// Additional coverage for paths the primary suites do not exercise:
// printer edge shapes, executor corner statements, the Forecaster facade's
// error handling and HYBRID wiring, and Result/Status ergonomics.
#include <cmath>

#include "common/finite.h"

#include <gtest/gtest.h>

#include "dbms/database.h"
#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/forecaster.h"
#include "preprocessor/templatizer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace qb5000 {
namespace {

std::string RoundTrip(const std::string& in) {
  auto stmt = sql::Parse(in);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString() << " for: " << in;
  if (!stmt.ok()) return "";
  return sql::Print(*stmt);
}

TEST(PrinterEdgeTest, NotAndIsNotNull) {
  EXPECT_EQ(RoundTrip("SELECT x FROM t WHERE NOT (a = 1 AND b = 2)"),
            "SELECT x FROM t WHERE NOT (a = 1 AND b = 2)");
  EXPECT_EQ(RoundTrip("SELECT x FROM t WHERE a IS NOT NULL"),
            "SELECT x FROM t WHERE a IS NOT NULL");
}

TEST(PrinterEdgeTest, NegatedBetweenAndIn) {
  EXPECT_EQ(RoundTrip("SELECT x FROM t WHERE a NOT BETWEEN 1 AND 2"),
            "SELECT x FROM t WHERE a NOT BETWEEN 1 AND 2");
}

TEST(PrinterEdgeTest, CrossJoinAndQualifiedStar) {
  EXPECT_EQ(RoundTrip("SELECT a.* FROM a CROSS JOIN b"),
            "SELECT a.* FROM a CROSS JOIN b");
}

TEST(PrinterEdgeTest, ArithmeticAndConcat) {
  EXPECT_EQ(RoundTrip("SELECT a + b * 2 FROM t"), "SELECT a + b * 2 FROM t");
  EXPECT_EQ(RoundTrip("SELECT a || b FROM t"), "SELECT a || b FROM t");
}

TEST(PrinterEdgeTest, BooleanAndNullLiterals) {
  EXPECT_EQ(RoundTrip("SELECT x FROM t WHERE a = TRUE AND b = NULL"),
            "SELECT x FROM t WHERE a = TRUE AND b = NULL");
}

TEST(PrinterEdgeTest, ScalarFunctionCalls) {
  // Scalar calls round-trip with uppercased function names.
  EXPECT_EQ(RoundTrip("SELECT lower(name) FROM t WHERE length(name) > 3"),
            "SELECT LOWER(name) FROM t WHERE LENGTH(name) > 3");
}

TEST(TemplatizerEdgeTest, OrderByAndHavingConstantsStripped) {
  auto out = Templatize(
      "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->template_text,
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > ?");
  ASSERT_EQ(out->parameters.size(), 1u);
}

TEST(ExecutorEdgeTest, UnfilteredWrites) {
  dbms::Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"id", true, 100}, {"v", true, 10}}).ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(db.GetTable("t")->Insert({int64_t{i}, int64_t{i % 10}}).ok());
  }
  auto update = db.Execute("UPDATE t SET v = 7");
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->rows_written, 20u);
  auto del = db.Execute("DELETE FROM t");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->rows_written, 20u);
  EXPECT_EQ(db.GetTable("t")->live_rows(), 0u);
}

TEST(ExecutorEdgeTest, SelectWithoutFromAndLimitOffset) {
  dbms::Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"id", true, 100}}).ok());
  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(db.GetTable("t")->Insert({int64_t{i}}).ok());
  }
  auto bare = db.Execute("SELECT 1");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->rows_returned, 1u);
  auto limited = db.Execute("SELECT id FROM t LIMIT 7 OFFSET 3");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->rows_returned, 7u);
}

TEST(ExecutorEdgeTest, IndexListingAndDrop) {
  dbms::Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"id", true, 100}, {"v", true, 10}}).ok());
  ASSERT_TRUE(db.CreateIndex("t", "id").ok());
  ASSERT_TRUE(db.CreateIndex("t", "v").ok());
  auto indexes = db.ListIndexes();
  ASSERT_EQ(indexes.size(), 2u);
  EXPECT_EQ(indexes[0], "t.id");
  EXPECT_EQ(db.NumIndexes(), 2u);
  ASSERT_TRUE(db.DropIndex("t", "v").ok());
  EXPECT_EQ(db.NumIndexes(), 1u);
  EXPECT_FALSE(db.DropIndex("t", "v").ok());
  EXPECT_FALSE(db.CreateIndex("missing", "id").ok());
}

TEST(ForecasterFacadeTest, RejectsBadHorizonsAndListsTrainedOnes) {
  PreProcessor pre;
  auto tmpl = Templatize("SELECT a FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  for (int h = 0; h < 10 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    pre.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour,
                          100 * (1.5 + std::sin(2 * M_PI * t)));
  }
  OnlineClusterer::Options copts;
  copts.feature.num_samples = 96;
  copts.feature.window_seconds = 3 * kSecondsPerDay;
  OnlineClusterer clusterer(copts);
  clusterer.Update(pre, 10 * kSecondsPerDay);
  ASSERT_FALSE(clusterer.clusters().empty());
  ClusterId cluster = clusterer.clusters().begin()->first;

  Forecaster::Options fopts;
  fopts.kind = ModelKind::kLr;
  fopts.training_window_seconds = 7 * kSecondsPerDay;
  Forecaster forecaster(fopts);
  // Horizon not a multiple of the interval: rejected.
  EXPECT_FALSE(forecaster
                   .Train(pre, clusterer, {cluster}, 10 * kSecondsPerDay,
                          {90 * kSecondsPerMinute})
                   .ok());
  // Empty cluster list: rejected.
  EXPECT_FALSE(forecaster
                   .Train(pre, clusterer, {}, 10 * kSecondsPerDay,
                          {kSecondsPerHour})
                   .ok());
  ASSERT_TRUE(forecaster
                  .Train(pre, clusterer, {cluster}, 10 * kSecondsPerDay,
                         {kSecondsPerHour, kSecondsPerDay})
                  .ok());
  EXPECT_TRUE(forecaster.trained());
  auto horizons = forecaster.horizons();
  ASSERT_EQ(horizons.size(), 2u);
  EXPECT_EQ(horizons[0], kSecondsPerHour);
  // Forecast for an untrained horizon fails cleanly.
  EXPECT_FALSE(
      forecaster.Forecast(pre, clusterer, 10 * kSecondsPerDay, 7777).ok());
  // Trained horizon succeeds and is finite/non-negative.
  auto rates =
      forecaster.Forecast(pre, clusterer, 10 * kSecondsPerDay, kSecondsPerHour);
  ASSERT_TRUE(rates.ok());
  for (double r : *rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_TRUE(qb5000::IsFinite(r));
  }
}

TEST(ForecasterFacadeTest, HybridKindTrainsKrOnFullHistory) {
  // 40 days of history with a weekly spike; HYBRID's KR component (trained
  // on the full hourly history) must be wired through Train/Forecast.
  PreProcessor pre;
  auto tmpl = Templatize("SELECT a FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  for (int h = 0; h < 40 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    double v = 100 * (1.5 + std::sin(2 * M_PI * t));
    if ((h / 24) % 7 == 6) v *= 6.0;  // weekly blowup
    pre.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour, v);
  }
  OnlineClusterer::Options copts;
  copts.feature.num_samples = 96;
  copts.feature.window_seconds = 7 * kSecondsPerDay;
  OnlineClusterer clusterer(copts);
  clusterer.Update(pre, 40 * kSecondsPerDay);
  ClusterId cluster = clusterer.clusters().begin()->first;

  Forecaster::Options fopts;
  fopts.kind = ModelKind::kHybrid;
  fopts.training_window_seconds = 10 * kSecondsPerDay;
  fopts.model.kr_input_window = 10 * 24;  // ten days of hourly history
  fopts.model.hidden_dim = 8;
  fopts.model.embedding_dim = 8;
  fopts.model.num_layers = 1;
  fopts.model.max_epochs = 8;
  Forecaster forecaster(fopts);
  ASSERT_TRUE(forecaster
                  .Train(pre, clusterer, {cluster}, 40 * kSecondsPerDay,
                         {kSecondsPerDay})
                  .ok());
  auto rates =
      forecaster.Forecast(pre, clusterer, 40 * kSecondsPerDay, kSecondsPerDay);
  ASSERT_TRUE(rates.ok()) << rates.status().ToString();
  EXPECT_GT((*rates)[0], 0.0);
}

TEST(EnsembleFromScratchTest, FitTrainsBothComponents) {
  // The non-prefitted EnsembleModel constructor must train LR+RNN itself.
  TimeSeries ts(0, kSecondsPerHour);
  for (int h = 0; h < 10 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    ts.Add(static_cast<Timestamp>(h) * kSecondsPerHour,
           200 * (1.5 + std::sin(2 * M_PI * t)));
  }
  auto ds = BuildDataset({ts}, 24, 1);
  ASSERT_TRUE(ds.ok());
  ModelOptions opts;
  opts.num_series = 1;
  opts.hidden_dim = 8;
  opts.embedding_dim = 8;
  opts.num_layers = 1;
  opts.max_epochs = 10;
  EnsembleModel ensemble(opts);
  ASSERT_TRUE(ensemble.Fit(ds->x, ds->y).ok());
  auto pred = ensemble.Predict(ds->x.Row(5));
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(qb5000::IsFinite((*pred)[0]));
}

TEST(ArrivalHistoryEdgeTest, FirstTimeAndLastArrival) {
  ArrivalHistory h;
  EXPECT_EQ(h.FirstTime(), 0);
  h.Record(5 * kSecondsPerHour, 2);
  h.Record(2 * kSecondsPerHour, 1);
  h.Record(9 * kSecondsPerHour, 1);
  EXPECT_EQ(h.FirstTime(), 2 * kSecondsPerHour);
  EXPECT_EQ(h.last_arrival(), 9 * kSecondsPerHour);
  h.Compact(6 * kSecondsPerHour);
  EXPECT_EQ(h.FirstTime(), 2 * kSecondsPerHour);  // archive keeps the origin
}

TEST(ResultErgonomicsTest, MoveAndArrowAccess) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
  std::string moved = *std::move(r);
  EXPECT_EQ(moved, "hello");
  Result<std::string> err = Status::OutOfRange("nope");
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace qb5000

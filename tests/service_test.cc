// Always-on service mode (DESIGN.md §14), proved against the synchronous
// pipeline it replaces:
//   * equivalence — every workload generator fed through EnqueueBatch +
//     the service drain produces bit-identical template ids, arrival
//     histories, and forecasts to the same trace fed through IngestBatch,
//     at thread-pool sizes 1 and 8 (the queue adds buffering, never drift);
//   * lifecycle — start/stop/backpressure contracts, including the final
//     checkpoint flush on StopService;
//   * incremental durability — delta sidecars restore to exactly the live
//     state, and compaction folds them back into full snapshots;
//   * concurrency — producers and Forecast readers hammer a background
//     service under TSan without data races or lost arrivals.
#include <sys/stat.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "common/metrics.h"
#include "common/mpsc_queue.h"
#include "common/rng.h"
#include "common/service.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/qb5000.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

std::string TestDir() {
  std::string dir = ::testing::TempDir() + "qb5000_service_test";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveCheckpointFiles(Env* env, const std::string& path) {
  for (const std::string& base : {path, path + ".delta"}) {
    for (const std::string& p :
         {base, AtomicFileWriter::BackupPath(base),
          AtomicFileWriter::TempPath(base)}) {
      if (env->FileExists(p)) {
        ASSERT_TRUE(env->DeleteFile(p).ok());
      }
    }
  }
}

/// Restores the previous global thread count when the test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(GetThreadCount()) {}
  ~ThreadCountGuard() { SetThreadCount(saved_); }

 private:
  size_t saved_;
};

/// Small, fast, but fully representative pipeline configuration. The
/// maintenance period is pushed out past every trace used here so the
/// service never auto-runs maintenance mid-feed — equivalence tests force
/// it at the same instant on both paths instead.
QueryBot5000::Config QuietConfig() {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  config.clusterer.feature.num_samples = 48;
  config.clusterer.feature.window_seconds = 2 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour};
  config.maintenance_period_seconds = 365 * kSecondsPerDay;
  return config;
}

constexpr size_t kBatch = 64;
constexpr Timestamp kTraceEnd = 2 * kSecondsPerDay;

std::vector<TraceEvent> MakeTrace(const SyntheticWorkload& workload) {
  return workload.Materialize(0, kTraceEnd, 10 * kSecondsPerMinute,
                              /*seed=*/7, /*volume_scale=*/1.0,
                              /*max_per_step=*/2);
}

std::vector<QueryArrival> ToArrivals(const std::vector<TraceEvent>& trace,
                                     size_t from, size_t count) {
  std::vector<QueryArrival> batch;
  batch.reserve(count);
  for (size_t i = from; i < from + count && i < trace.size(); ++i) {
    batch.push_back({trace[i].sql, trace[i].timestamp, 1.0});
  }
  return batch;
}

void FeedSync(QueryBot5000& bot, const std::vector<TraceEvent>& trace) {
  for (size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = ToArrivals(trace, i, kBatch);
    auto ids = bot.IngestBatch(batch);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  }
}

/// Feeds the same batches through the producer-side service API, retrying
/// kOverloaded — that is the documented backpressure contract, and with a
/// small ring it actually fires.
void FeedService(QueryBot5000& bot, const std::vector<TraceEvent>& trace,
                 size_t from = 0, size_t to = SIZE_MAX) {
  size_t end = std::min(to, trace.size());
  for (size_t i = from; i < end; i += kBatch) {
    auto batch = ToArrivals(trace, i, std::min(kBatch, end - i));
    while (true) {
      Status st = bot.EnqueueBatch(batch);
      if (st.ok()) break;
      ASSERT_EQ(st.code(), StatusCode::kOverloaded) << st.ToString();
      if (!bot.service_running()) FAIL() << "service died mid-feed";
      std::this_thread::yield();
    }
  }
}

/// The equivalence oracle: identical templates, identical histories,
/// identical forecasts. Exact comparisons throughout — the service path
/// must be a pure buffering layer in front of the same pipeline.
void ExpectSamePipelineState(QueryBot5000& service_bot, QueryBot5000& sync_bot,
                             Timestamp end) {
  auto sync_ids = sync_bot.preprocessor().TemplateIds();
  auto service_ids = service_bot.preprocessor().TemplateIds();
  ASSERT_EQ(service_ids, sync_ids);
  EXPECT_DOUBLE_EQ(service_bot.preprocessor().total_queries(),
                   sync_bot.preprocessor().total_queries());
  for (TemplateId id : sync_ids) {
    const auto* a = sync_bot.preprocessor().GetTemplate(id);
    const auto* b = service_bot.preprocessor().GetTemplate(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->fingerprint, a->fingerprint) << "template " << id;
    EXPECT_EQ(b->text, a->text) << "template " << id;
    EXPECT_EQ(b->first_seen, a->first_seen) << "template " << id;
    EXPECT_EQ(b->last_seen, a->last_seen) << "template " << id;
    EXPECT_DOUBLE_EQ(b->history.Total(), a->history.Total())
        << "template " << id;
    auto sa = a->history.Series(kSecondsPerHour, 0, end);
    auto sb = b->history.Series(kSecondsPerHour, 0, end);
    ASSERT_TRUE(sa.ok() && sb.ok());
    ASSERT_EQ(sb->size(), sa->size());
    for (size_t i = 0; i < sa->size(); ++i) {
      EXPECT_DOUBLE_EQ(sb->values()[i], sa->values()[i])
          << "template " << id << " bucket " << i;
    }
  }

  auto fa = sync_bot.Forecast(end, kSecondsPerHour);
  auto fb = service_bot.Forecast(end, kSecondsPerHour);
  ASSERT_EQ(fb.ok(), fa.ok()) << fb.status().ToString();
  if (fa.ok()) {
    ASSERT_EQ(fb->clusters, fa->clusters);
    EXPECT_EQ(fb->interval_seconds, fa->interval_seconds);
    ASSERT_EQ(fb->queries_per_interval.size(), fa->queries_per_interval.size());
    for (size_t i = 0; i < fa->queries_per_interval.size(); ++i) {
      EXPECT_DOUBLE_EQ(fb->queries_per_interval[i],
                       fa->queries_per_interval[i])
          << "cluster index " << i;
    }
  }
}

// --- golden-trace equivalence -----------------------------------------------

class ServiceEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(ServiceEquivalence, MatchesSynchronousIngestOnAllWorkloads) {
  ThreadCountGuard guard;
  SetThreadCount(GetParam());
  struct Named {
    const char* name;
    SyntheticWorkload workload;
  };
  const WorkloadOptions options{.seed = 13, .volume_scale = 0.2};
  Named workloads[] = {{"bustracker", MakeBusTracker(options)},
                       {"admissions", MakeAdmissions(options)},
                       {"mooc", MakeMooc(options)},
                       {"noisy_composite", MakeNoisyComposite(options)}};
  for (const Named& entry : workloads) {
    SCOPED_TRACE(entry.name);
    const std::vector<TraceEvent> trace = MakeTrace(entry.workload);
    ASSERT_FALSE(trace.empty());

    QueryBot5000 sync_bot(QuietConfig());
    FeedSync(sync_bot, trace);
    ASSERT_TRUE(sync_bot.RunMaintenance(kTraceEnd, /*force=*/true).ok());

    QueryBot5000 service_bot(QuietConfig());
    // A deliberately small ring so the Overloaded/retry path is exercised
    // while the background thread drains concurrently. Maintenance stays
    // caller-driven on both paths so the comparison is ingest-for-ingest:
    // both bots run it exactly once, forced, at the same instant below.
    QueryBot5000::ServiceOptions sopts;
    sopts.queue_capacity = 8;
    sopts.background = true;
    sopts.auto_maintenance = false;
    ASSERT_TRUE(service_bot.StartService(sopts).ok());
    FeedService(service_bot, trace);
    service_bot.DrainForTest();
    ASSERT_TRUE(service_bot.RunMaintenance(kTraceEnd, /*force=*/true).ok());
    ASSERT_TRUE(service_bot.StopService().ok());

    ExpectSamePipelineState(service_bot, sync_bot, kTraceEnd);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ServiceEquivalence,
                         ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "threads_" + std::to_string(info.param);
                         });

// --- sharded drain equivalence (DESIGN.md §14) -------------------------------

/// The preprocessor's counter lines from a counters-only export. Counters
/// are the deterministic section of the metrics contract (histograms carry
/// timings); byte-comparing them is the strongest "exact counters" oracle
/// the sharded drain can be held to.
std::string PreprocessorCounterLines(const MetricsRegistry& metrics) {
  MetricsRegistry::ExportOptions counters_only;
  counters_only.counters_only = true;
  std::istringstream in(metrics.ExportText(counters_only));
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    // Export lines read "counter <name> <value>" (metrics.h).
    if (line.rfind("counter preprocessor.", 0) == 0) out += line + "\n";
  }
  return out;
}

/// Feeds `trace` through EnqueueBatch from `producers` real threads while an
/// atomic ticket keeps the *global chunk order* deterministic: chunk c is
/// pushed only after chunks 0..c-1 are in the ring. Every push still crosses
/// a real thread boundary into the MPSC ring (and retries kOverloaded), but
/// the service consumes the exact sequence FeedSync applies — the property
/// that makes byte-identity against synchronous ingest assertable.
void FeedServiceTicketed(QueryBot5000& bot,
                         const std::vector<TraceEvent>& trace,
                         size_t producers) {
  const size_t num_chunks = (trace.size() + kBatch - 1) / kBatch;
  std::atomic<size_t> turn{0};  // lint:raw-atomic-ok (test ticket)
  ThreadPool pool(producers);
  pool.Run(producers, [&](size_t p) {
    for (size_t c = p; c < num_chunks; c += producers) {
      auto batch = ToArrivals(trace, c * kBatch, kBatch);
      while (turn.load(std::memory_order_acquire) != c) {
        std::this_thread::yield();
      }
      while (true) {
        Status st = bot.EnqueueBatch(batch);
        if (st.ok()) break;
        ASSERT_EQ(st.code(), StatusCode::kOverloaded) << st.ToString();
        if (!bot.service_running()) FAIL() << "service died mid-feed";
        std::this_thread::yield();
      }
      turn.store(c + 1, std::memory_order_release);
    }
  });
}

/// (drain_workers, producers): at every width the sharded drain must be a
/// scheduling change, never a semantic one — template ids, histories,
/// forecasts, and the preprocessor counter export all byte-identical to
/// synchronous ingest of the same trace.
class ShardedServiceEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ShardedServiceEquivalence, MatchesSynchronousIngestOnAllWorkloads) {
  const size_t drain_workers = std::get<0>(GetParam());
  const size_t producers = std::get<1>(GetParam());
  struct Named {
    const char* name;
    SyntheticWorkload workload;
  };
  const WorkloadOptions options{.seed = 13, .volume_scale = 0.2};
  Named workloads[] = {{"bustracker", MakeBusTracker(options)},
                       {"admissions", MakeAdmissions(options)},
                       {"mooc", MakeMooc(options)},
                       {"noisy_composite", MakeNoisyComposite(options)}};
  for (const Named& entry : workloads) {
    SCOPED_TRACE(entry.name);
    const std::vector<TraceEvent> trace = MakeTrace(entry.workload);
    ASSERT_FALSE(trace.empty());

    QueryBot5000 sync_bot(QuietConfig());
    FeedSync(sync_bot, trace);
    ASSERT_TRUE(sync_bot.RunMaintenance(kTraceEnd, /*force=*/true).ok());

    QueryBot5000 service_bot(QuietConfig());
    // Small ring: producers ride the Overloaded/retry path while the
    // background thread drains concurrently — preps of later chunks race
    // merges of earlier ones, which is exactly the staleness the ordered
    // merge must absorb without drift.
    QueryBot5000::ServiceOptions sopts;
    sopts.queue_capacity = 8;
    sopts.background = true;
    sopts.auto_maintenance = false;
    sopts.drain_workers = drain_workers;
    ASSERT_TRUE(service_bot.StartService(sopts).ok());
    if (kMetricsEnabled) {
      EXPECT_EQ(service_bot.Metrics().GetGauge("core.drain_workers")->value(),
                static_cast<double>(drain_workers));
    }
    FeedServiceTicketed(service_bot, trace, producers);
    service_bot.DrainForTest();
    ASSERT_TRUE(service_bot.RunMaintenance(kTraceEnd, /*force=*/true).ok());
    ASSERT_TRUE(service_bot.StopService().ok());

    ExpectSamePipelineState(service_bot, sync_bot, kTraceEnd);
    if (kMetricsEnabled) {
      // Exact counters: same chunking ⇒ same batches_total; everything else
      // (hits, misses, creations, parse failures) must survive speculative
      // preparation unchanged.
      EXPECT_EQ(PreprocessorCounterLines(service_bot.Metrics()),
                PreprocessorCounterLines(sync_bot.Metrics()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkersByProducers, ShardedServiceEquivalence,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{2}, size_t{8}),
                       ::testing::Values(size_t{1}, size_t{8})),
    [](const ::testing::TestParamInfo<std::tuple<size_t, size_t>>& info) {
      return "workers_" + std::to_string(std::get<0>(info.param)) +
             "_producers_" + std::to_string(std::get<1>(info.param));
    });

// --- fuzz differential: sharded drain vs per-query loop ----------------------

/// Adversarial arrival stream for the sharded drain: heavy duplication of a
/// small template set (the same key recurring across chunks of one run — the
/// stale-probe case), literal rewrites (cache hits under different raw
/// bytes), corrupted statements (rejects), and 7-second timestamp steps so
/// same-minute aggregation runs keep crossing chunk and minute boundaries.
std::vector<TraceEvent> MakeServiceFuzzTrace(int iterations, uint64_t seed) {
  static const char* const kCorpus[] = {
      "SELECT * FROM orders WHERE id = 42",
      "SELECT name, total FROM orders WHERE total > 10.5 AND region = 'east'",
      "SELECT id FROM users WHERE name LIKE 'a%' OR age BETWEEN 18 AND 65",
      "SELECT * FROM trips WHERE route_id IN (1, 2, 3) LIMIT 50",
      "INSERT INTO orders (id, total, region) VALUES (1, 9.99, 'west')",
      "UPDATE users SET age = 30, name = 'bob' WHERE id = 7",
      "DELETE FROM events WHERE ts < 1600000000",
      "SELECT a.id FROM a WHERE ((a.x = 1 OR a.y = 2) AND a.z = 'q')",
  };
  Rng rng(seed);
  std::vector<TraceEvent> events;
  events.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    std::string sql = kCorpus[rng.UniformInt(0, std::size(kCorpus) - 1)];
    switch (rng.UniformInt(0, 3)) {
      case 0:  // exact repeat
        break;
      case 1:  // rewrite digits: raw string differs, template key does not
        for (char& c : sql) {
          if (c >= '0' && c <= '9') {
            c = static_cast<char>('0' + rng.UniformInt(0, 9));
          }
        }
        break;
      case 2:  // shout-case repeat (normalizer canonicalizes case)
        for (char& c : sql) c = static_cast<char>(std::toupper(c));
        break;
      default: {  // corrupt one byte (often a reject or a fallback)
        size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(sql.size()) - 1));
        sql[at] = static_cast<char>(rng.UniformInt(1, 255));
        break;
      }
    }
    events.push_back(
        TraceEvent{static_cast<Timestamp>(i) * 7, std::move(sql)});
  }
  return events;
}

TEST(ServiceTest, ShardedDrainFuzzDifferentialMatchesPerQueryLoop) {
  const std::vector<TraceEvent> trace = MakeServiceFuzzTrace(3000, 20260809);
  const Timestamp end = static_cast<Timestamp>(trace.size()) * 7;

  // Baseline: the naive per-query loop (batches_total stays 0).
  QueryBot5000 sync_bot(QuietConfig());
  for (const TraceEvent& e : trace) {
    (void)sync_bot.Ingest(e.sql, e.timestamp);  // rejects must match too
  }

  // Sharded service: random producer-batch boundaries (1..96 arrivals), a
  // tiny ring, three prep workers — chunks of one run keep colliding on the
  // same templates and the same minute buckets.
  QueryBot5000 service_bot(QuietConfig());
  QueryBot5000::ServiceOptions sopts;
  sopts.queue_capacity = 4;
  sopts.background = true;
  sopts.auto_maintenance = false;
  sopts.drain_workers = 3;
  ASSERT_TRUE(service_bot.StartService(sopts).ok());
  Rng rng(4242);
  size_t chunks = 0;
  size_t at = 0;
  while (at < trace.size()) {
    size_t len = static_cast<size_t>(rng.UniformInt(1, 96));
    auto batch = ToArrivals(trace, at, len);
    while (true) {
      Status st = service_bot.EnqueueBatch(batch);
      if (st.ok()) break;
      ASSERT_EQ(st.code(), StatusCode::kOverloaded) << st.ToString();
      std::this_thread::yield();
    }
    ++chunks;
    at += batch.size();
  }
  service_bot.DrainForTest();
  ASSERT_TRUE(service_bot.StopService().ok());

  Status sync_mnt = sync_bot.RunMaintenance(end, /*force=*/true);
  Status service_mnt = service_bot.RunMaintenance(end, /*force=*/true);
  ASSERT_EQ(service_mnt.ok(), sync_mnt.ok())
      << service_mnt.ToString() << " vs " << sync_mnt.ToString();
  ExpectSamePipelineState(service_bot, sync_bot, end);
  if (kMetricsEnabled) {
    // Identical counters modulo the one batching line: the per-query loop
    // never batches, the service applied `chunks` of them.
    std::string expect = PreprocessorCounterLines(sync_bot.Metrics());
    const std::string zero = "preprocessor.batches_total 0";
    size_t pos = expect.find(zero);
    ASSERT_NE(pos, std::string::npos);
    expect.replace(pos, zero.size(),
                   "preprocessor.batches_total " + std::to_string(chunks));
    EXPECT_EQ(PreprocessorCounterLines(service_bot.Metrics()), expect);
  }
}

// --- lifecycle ---------------------------------------------------------------

TEST(ServiceTest, LifecycleContracts) {
  QueryBot5000 bot(QuietConfig());
  std::vector<QueryArrival> one{{"SELECT 1", kSecondsPerHour, 1.0}};

  // Not running: producer calls are rejected, stop is an error.
  EXPECT_EQ(bot.EnqueueBatch(one).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(bot.StopService().ok());
  EXPECT_FALSE(bot.service_running());

  QueryBot5000::ServiceOptions foreground;
  foreground.background = false;
  ASSERT_TRUE(bot.StartService(foreground).ok());
  EXPECT_TRUE(bot.service_running());
  EXPECT_FALSE(bot.StartService(foreground).ok())
      << "double start must fail";

  ASSERT_TRUE(bot.EnqueueBatch(one).ok());
  bot.DrainForTest();
  EXPECT_DOUBLE_EQ(bot.preprocessor().total_queries(), 1.0);

  ASSERT_TRUE(bot.StopService().ok());
  EXPECT_FALSE(bot.service_running());
  // Synchronous mode works again after teardown.
  EXPECT_TRUE(bot.Ingest("SELECT 1", 2 * kSecondsPerHour).ok());

  // Restartable: a second service session on the same controller.
  QueryBot5000::ServiceOptions background;
  background.background = true;
  ASSERT_TRUE(bot.StartService(background).ok());
  ASSERT_TRUE(bot.EnqueueBatch(one).ok());
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());
  EXPECT_DOUBLE_EQ(bot.preprocessor().total_queries(), 3.0);
}

TEST(ServiceTest, BackgroundMaintenancePublishesEpochs) {
  QueryBot5000::Config config = QuietConfig();
  config.maintenance_period_seconds = kSecondsPerDay;
  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions sopts;
  sopts.background = true;
  ASSERT_TRUE(bot.StartService(sopts).ok());
  EXPECT_EQ(bot.model_epoch(), 0u);

  auto workload = MakeBusTracker({.seed = 3, .volume_scale = 0.2});
  const std::vector<TraceEvent> trace = MakeTrace(workload);
  FeedService(bot, trace);
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());

  // Two days of virtual time against a one-day period: the background
  // thread must have run maintenance and published at least once, without
  // anyone calling RunMaintenance.
  EXPECT_TRUE(bot.maintenance_has_run());
  EXPECT_GE(bot.model_epoch(), 1u);
  if (kMetricsEnabled) {
    EXPECT_EQ(bot.Metrics().GetGauge("core.model_epoch")->value(),
              static_cast<double>(bot.model_epoch()));
  }
}

TEST(ServiceTest, ConcurrentProducersAndForecastReaders) {
  QueryBot5000::Config config = QuietConfig();
  config.maintenance_period_seconds = kSecondsPerHour;  // churn publications
  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions sopts;
  sopts.queue_capacity = 16;
  sopts.background = true;
  ASSERT_TRUE(bot.StartService(sopts).ok());

  auto workload = MakeBusTracker({.seed = 5, .volume_scale = 0.2});
  const std::vector<TraceEvent> trace = MakeTrace(workload);
  ASSERT_GE(trace.size(), 8u);
  constexpr size_t kProducers = 4;
  constexpr size_t kReaders = 2;
  const size_t shard = trace.size() / kProducers;

  ThreadPool pool(kProducers + kReaders);
  pool.Run(kProducers + kReaders, [&](size_t task) {
    if (task < kProducers) {
      size_t from = task * shard;
      size_t to = task + 1 == kProducers ? trace.size() : from + shard;
      FeedService(bot, trace, from, to);
      return;
    }
    // Reader lane: bounded forecasts race the drain and the epoch swaps.
    // Failures (nothing modeled yet) are fine; crashes and races are not.
    for (int i = 0; i < 200; ++i) {
      (void)bot.Forecast(kTraceEnd, kSecondsPerHour, /*budget_seconds=*/0.01);
      (void)bot.model_epoch();
    }
  });

  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());
  // Every arrival admitted exactly once: kOverloaded retries never double
  // apply and the ring never drops a chunk it accepted.
  EXPECT_DOUBLE_EQ(bot.preprocessor().total_queries(),
                   static_cast<double>(trace.size()));
}

// --- incremental durability ---------------------------------------------------

TEST(ServiceTest, DeltaCheckpointRestoresExactLiveState) {
  const std::string path = TestDir() + "/delta_roundtrip.qbc";
  RemoveCheckpointFiles(Env::Default(), path);
  QueryBot5000::Config config = QuietConfig();

  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions sopts;
  sopts.background = false;
  sopts.checkpoint_path = path;
  sopts.checkpoint_period_seconds = 6 * kSecondsPerHour;
  sopts.compact_every = 1000;
  ASSERT_TRUE(bot.StartService(sopts).ok());

  auto workload = MakeBusTracker({.seed = 11, .volume_scale = 0.2});
  const std::vector<TraceEvent> trace = MakeTrace(workload);
  // First drain writes the full base; later drains cross checkpoint
  // periods and write delta sidecars on top of it.
  const size_t half = trace.size() / 2;
  FeedService(bot, trace, 0, half);
  bot.DrainForTest();
  ASSERT_TRUE(Env::Default()->FileExists(path)) << "full base not written";
  FeedService(bot, trace, half);
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());
  ASSERT_TRUE(Env::Default()->FileExists(path + ".delta"))
      << "no delta sidecar after un-compacted periods";

  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(report.delta_applied) << report.detail;
  EXPECT_FALSE(report.used_backup);
  EXPECT_FALSE(report.reclustered) << report.detail;

  // The sidecar closes the gap completely: restored state equals the live
  // bot at shutdown, not the state of the last full snapshot.
  auto live_ids = bot.preprocessor().TemplateIds();
  ASSERT_EQ(restored->preprocessor().TemplateIds(), live_ids);
  EXPECT_DOUBLE_EQ(restored->preprocessor().total_queries(),
                   bot.preprocessor().total_queries());
  for (TemplateId id : live_ids) {
    const auto* a = bot.preprocessor().GetTemplate(id);
    const auto* b = restored->preprocessor().GetTemplate(id);
    ASSERT_NE(b, nullptr) << "template " << id << " lost in delta replay";
    EXPECT_EQ(b->fingerprint, a->fingerprint);
    EXPECT_EQ(b->last_seen, a->last_seen) << "template " << id;
    EXPECT_DOUBLE_EQ(b->history.Total(), a->history.Total())
        << "template " << id;
    auto sa = a->history.Series(kSecondsPerHour, 0, kTraceEnd);
    auto sb = b->history.Series(kSecondsPerHour, 0, kTraceEnd);
    ASSERT_TRUE(sa.ok() && sb.ok());
    ASSERT_EQ(sb->size(), sa->size());
    for (size_t i = 0; i < sa->size(); ++i) {
      EXPECT_DOUBLE_EQ(sb->values()[i], sa->values()[i])
          << "template " << id << " bucket " << i;
    }
  }
}

TEST(ServiceTest, CompactionFoldsDeltasIntoFullSnapshots) {
  const std::string path = TestDir() + "/compaction.qbc";
  RemoveCheckpointFiles(Env::Default(), path);
  QueryBot5000::Config config = QuietConfig();

  QueryBot5000 bot(config);
  // compact_every=1: every periodic write is promoted to a full snapshot,
  // so no sidecar may survive shutdown.
  QueryBot5000::ServiceOptions sopts;
  sopts.background = false;
  sopts.checkpoint_path = path;
  sopts.checkpoint_period_seconds = 6 * kSecondsPerHour;
  sopts.compact_every = 1;
  ASSERT_TRUE(bot.StartService(sopts).ok());
  auto workload = MakeBusTracker({.seed = 11, .volume_scale = 0.2});
  const std::vector<TraceEvent> trace = MakeTrace(workload);
  FeedService(bot, trace);
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());

  EXPECT_FALSE(Env::Default()->FileExists(path + ".delta"))
      << "compaction must delete the folded sidecar";
  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(report.delta_applied);
  EXPECT_DOUBLE_EQ(restored->preprocessor().total_queries(),
                   bot.preprocessor().total_queries());
}

// Satellite of the delta log (DESIGN.md §14): RunMaintenance driven
// *directly* while a checkpointing service runs publishes its eviction
// cutoff into the delta log, so a restore replays the eviction instead of
// resurrecting templates the live process dropped.
TEST(ServiceTest, DirectMaintenanceEvictionSurvivesDeltaRestore) {
  const std::string path = TestDir() + "/maintenance_during_delta.qbc";
  RemoveCheckpointFiles(Env::Default(), path);
  QueryBot5000::Config config = QuietConfig();
  config.template_eviction_seconds = 2 * kSecondsPerHour;

  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions sopts;
  sopts.background = false;
  sopts.checkpoint_path = path;
  sopts.checkpoint_period_seconds = kSecondsPerHour;
  sopts.compact_every = 1000;  // stay incremental after the base
  ASSERT_TRUE(bot.StartService(sopts).ok());

  auto feed_hours = [&](const char* sql, Timestamp from_h, Timestamp to_h) {
    for (Timestamp h = from_h; h < to_h; ++h) {
      QueryArrival a[] = {{sql, h * kSecondsPerHour, 1.0}};
      ASSERT_TRUE(bot.EnqueueBatch(a).ok());
    }
  };
  // Phase 1: the soon-idle template; lands in the full base checkpoint.
  feed_hours("SELECT a FROM t WHERE id = 1", 0, 3);
  bot.DrainForTest();
  ASSERT_TRUE(Env::Default()->FileExists(path)) << "full base not written";
  const std::vector<TemplateId> phase1_ids = bot.preprocessor().TemplateIds();
  ASSERT_EQ(phase1_ids.size(), 1u);
  const TemplateId idle_id = phase1_ids[0];

  // Phase 2: a fresh template only; accrues into the delta sidecar.
  feed_hours("SELECT b FROM u WHERE id = 2", 12, 24);
  bot.DrainForTest();

  // The caller-driven pass: evicts the idle template (last seen hour 2,
  // cutoff 22h) and publishes the cutoff to the service consumer.
  ASSERT_TRUE(bot.RunMaintenance(24 * kSecondsPerHour, /*force=*/true).ok());
  ASSERT_EQ(bot.preprocessor().GetTemplate(idle_id), nullptr)
      << "precondition: maintenance must have evicted the idle template";
  ASSERT_EQ(bot.preprocessor().num_templates(), 1u);
  ASSERT_TRUE(bot.StopService().ok());  // folds the cutoff, flushes the delta
  ASSERT_TRUE(Env::Default()->FileExists(path + ".delta"));

  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(report.delta_applied) << report.detail;
  // The base holds the idle template and the delta replays its cutoff:
  // restore must match the live bot, evicted template absent.
  EXPECT_EQ(restored->preprocessor().GetTemplate(idle_id), nullptr)
      << "restore resurrected an evicted template";
  EXPECT_EQ(restored->preprocessor().TemplateIds(),
            bot.preprocessor().TemplateIds());
  for (TemplateId id : bot.preprocessor().TemplateIds()) {
    const auto* live = bot.preprocessor().GetTemplate(id);
    const auto* back = restored->preprocessor().GetTemplate(id);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->last_seen, live->last_seen) << "template " << id;
    EXPECT_DOUBLE_EQ(back->history.Total(), live->history.Total())
        << "template " << id;
  }
}

// --- sharded-drain building blocks -------------------------------------------

TEST(ServiceQueue, TryPopBatchMatchesSequentialPops) {
  MpscRingQueue<int> queue(8);
  for (int lap = 0; lap < 3; ++lap) {  // wrap the ring across laps
    for (int i = 0; i < 6; ++i) {
      int v = lap * 10 + i;
      ASSERT_TRUE(queue.TryPush(std::move(v)));
    }
    int out[8] = {0};
    ASSERT_EQ(queue.TryPopBatch(out, 4), 4u);  // capped by max
    for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], lap * 10 + i);
    ASSERT_EQ(queue.TryPopBatch(out, 8), 2u);  // capped by occupancy
    EXPECT_EQ(out[0], lap * 10 + 4);
    EXPECT_EQ(out[1], lap * 10 + 5);
    EXPECT_EQ(queue.TryPopBatch(out, 8), 0u);  // empty
  }
}

TEST(ServiceDrainPool, RunsEveryJobAcrossRunsAndRestarts) {
  DrainPool pool;
  pool.Start(3);
  EXPECT_EQ(pool.workers(), 3u);
  for (int round = 0; round < 3; ++round) {
    constexpr size_t kJobs = 17;  // more jobs than workers: claims recycle
    std::vector<std::atomic<int>> done(kJobs);  // lint:raw-atomic-ok (test)
    pool.BeginRun(kJobs, [&](size_t i) { done[i].store(1); });
    for (size_t i = 0; i < kJobs; ++i) {
      (void)pool.AwaitPrepared(i);
      EXPECT_EQ(done[i].load(), 1) << "job " << i << " not prepared";
    }
    pool.EndRun();
  }
  pool.Stop();
  EXPECT_EQ(pool.workers(), 0u);
  pool.Start(1);  // restartable, like ServiceThread
  bool ran = false;
  pool.BeginRun(1, [&](size_t) { ran = true; });
  (void)pool.AwaitPrepared(0);
  pool.EndRun();
  EXPECT_TRUE(ran);
  pool.Stop();
}

TEST(ServiceDrainPool, AwaitHelpsWithUnclaimedJobsInsteadOfBlocking) {
  DrainPool pool;
  pool.Start(1);
  std::atomic<int> started{0};  // lint:raw-atomic-ok (test gate)
  std::atomic<int> release{0};  // lint:raw-atomic-ok (test gate)
  pool.BeginRun(2, [&](size_t i) {
    if (i == 0) {
      started.store(1, std::memory_order_release);
      while (release.load(std::memory_order_acquire) == 0) {
        std::this_thread::yield();
      }
    }
  });
  // The single worker has claimed job 0 and is wedged inside its prep. Job
  // 1 is unclaimed, so the await must prepare it on *this* thread and
  // return without ever blocking.
  while (started.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(pool.AwaitPrepared(1));
  release.store(1, std::memory_order_release);
  (void)pool.AwaitPrepared(0);
  pool.EndRun();
  pool.Stop();
}

TEST(ServiceDrainPool, AwaitReportsHeadOfLineWait) {
  DrainPool pool;
  pool.Start(1);
  std::atomic<int> started{0};  // lint:raw-atomic-ok (test gate)
  std::atomic<int> release{0};  // lint:raw-atomic-ok (test gate)
  // A run of one job, claimed by the worker and parked in its prep: there
  // is nothing left to help with, so the await must block — and report
  // it — until the gate opens.
  pool.BeginRun(1, [&](size_t) {
    started.store(1, std::memory_order_release);
    while (release.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
  });
  while (started.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  bool waited = false;
  ThreadPool helpers(2);
  helpers.Run(2, [&](size_t task) {
    if (task == 0) {
      waited = pool.AwaitPrepared(0);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.store(1, std::memory_order_release);
  });
  EXPECT_TRUE(waited);
  pool.EndRun();
  pool.Stop();
}

}  // namespace
}  // namespace qb5000

// Always-on service mode (DESIGN.md §14), proved against the synchronous
// pipeline it replaces:
//   * equivalence — every workload generator fed through EnqueueBatch +
//     the service drain produces bit-identical template ids, arrival
//     histories, and forecasts to the same trace fed through IngestBatch,
//     at thread-pool sizes 1 and 8 (the queue adds buffering, never drift);
//   * lifecycle — start/stop/backpressure contracts, including the final
//     checkpoint flush on StopService;
//   * incremental durability — delta sidecars restore to exactly the live
//     state, and compaction folds them back into full snapshots;
//   * concurrency — producers and Forecast readers hammer a background
//     service under TSan without data races or lost arrivals.
#include <sys/stat.h>

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/qb5000.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

std::string TestDir() {
  std::string dir = ::testing::TempDir() + "qb5000_service_test";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveCheckpointFiles(Env* env, const std::string& path) {
  for (const std::string& base : {path, path + ".delta"}) {
    for (const std::string& p :
         {base, AtomicFileWriter::BackupPath(base),
          AtomicFileWriter::TempPath(base)}) {
      if (env->FileExists(p)) {
        ASSERT_TRUE(env->DeleteFile(p).ok());
      }
    }
  }
}

/// Restores the previous global thread count when the test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(GetThreadCount()) {}
  ~ThreadCountGuard() { SetThreadCount(saved_); }

 private:
  size_t saved_;
};

/// Small, fast, but fully representative pipeline configuration. The
/// maintenance period is pushed out past every trace used here so the
/// service never auto-runs maintenance mid-feed — equivalence tests force
/// it at the same instant on both paths instead.
QueryBot5000::Config QuietConfig() {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  config.clusterer.feature.num_samples = 48;
  config.clusterer.feature.window_seconds = 2 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour};
  config.maintenance_period_seconds = 365 * kSecondsPerDay;
  return config;
}

constexpr size_t kBatch = 64;
constexpr Timestamp kTraceEnd = 2 * kSecondsPerDay;

std::vector<TraceEvent> MakeTrace(const SyntheticWorkload& workload) {
  return workload.Materialize(0, kTraceEnd, 10 * kSecondsPerMinute,
                              /*seed=*/7, /*volume_scale=*/1.0,
                              /*max_per_step=*/2);
}

std::vector<QueryArrival> ToArrivals(const std::vector<TraceEvent>& trace,
                                     size_t from, size_t count) {
  std::vector<QueryArrival> batch;
  batch.reserve(count);
  for (size_t i = from; i < from + count && i < trace.size(); ++i) {
    batch.push_back({trace[i].sql, trace[i].timestamp, 1.0});
  }
  return batch;
}

void FeedSync(QueryBot5000& bot, const std::vector<TraceEvent>& trace) {
  for (size_t i = 0; i < trace.size(); i += kBatch) {
    auto batch = ToArrivals(trace, i, kBatch);
    auto ids = bot.IngestBatch(batch);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  }
}

/// Feeds the same batches through the producer-side service API, retrying
/// kOverloaded — that is the documented backpressure contract, and with a
/// small ring it actually fires.
void FeedService(QueryBot5000& bot, const std::vector<TraceEvent>& trace,
                 size_t from = 0, size_t to = SIZE_MAX) {
  size_t end = std::min(to, trace.size());
  for (size_t i = from; i < end; i += kBatch) {
    auto batch = ToArrivals(trace, i, std::min(kBatch, end - i));
    while (true) {
      Status st = bot.EnqueueBatch(batch);
      if (st.ok()) break;
      ASSERT_EQ(st.code(), StatusCode::kOverloaded) << st.ToString();
      if (!bot.service_running()) FAIL() << "service died mid-feed";
      std::this_thread::yield();
    }
  }
}

/// The equivalence oracle: identical templates, identical histories,
/// identical forecasts. Exact comparisons throughout — the service path
/// must be a pure buffering layer in front of the same pipeline.
void ExpectSamePipelineState(QueryBot5000& service_bot, QueryBot5000& sync_bot,
                             Timestamp end) {
  auto sync_ids = sync_bot.preprocessor().TemplateIds();
  auto service_ids = service_bot.preprocessor().TemplateIds();
  ASSERT_EQ(service_ids, sync_ids);
  EXPECT_DOUBLE_EQ(service_bot.preprocessor().total_queries(),
                   sync_bot.preprocessor().total_queries());
  for (TemplateId id : sync_ids) {
    const auto* a = sync_bot.preprocessor().GetTemplate(id);
    const auto* b = service_bot.preprocessor().GetTemplate(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->fingerprint, a->fingerprint) << "template " << id;
    EXPECT_EQ(b->text, a->text) << "template " << id;
    EXPECT_EQ(b->first_seen, a->first_seen) << "template " << id;
    EXPECT_EQ(b->last_seen, a->last_seen) << "template " << id;
    EXPECT_DOUBLE_EQ(b->history.Total(), a->history.Total())
        << "template " << id;
    auto sa = a->history.Series(kSecondsPerHour, 0, end);
    auto sb = b->history.Series(kSecondsPerHour, 0, end);
    ASSERT_TRUE(sa.ok() && sb.ok());
    ASSERT_EQ(sb->size(), sa->size());
    for (size_t i = 0; i < sa->size(); ++i) {
      EXPECT_DOUBLE_EQ(sb->values()[i], sa->values()[i])
          << "template " << id << " bucket " << i;
    }
  }

  auto fa = sync_bot.Forecast(end, kSecondsPerHour);
  auto fb = service_bot.Forecast(end, kSecondsPerHour);
  ASSERT_EQ(fb.ok(), fa.ok()) << fb.status().ToString();
  if (fa.ok()) {
    ASSERT_EQ(fb->clusters, fa->clusters);
    EXPECT_EQ(fb->interval_seconds, fa->interval_seconds);
    ASSERT_EQ(fb->queries_per_interval.size(), fa->queries_per_interval.size());
    for (size_t i = 0; i < fa->queries_per_interval.size(); ++i) {
      EXPECT_DOUBLE_EQ(fb->queries_per_interval[i],
                       fa->queries_per_interval[i])
          << "cluster index " << i;
    }
  }
}

// --- golden-trace equivalence -----------------------------------------------

class ServiceEquivalence : public ::testing::TestWithParam<size_t> {};

TEST_P(ServiceEquivalence, MatchesSynchronousIngestOnAllWorkloads) {
  ThreadCountGuard guard;
  SetThreadCount(GetParam());
  struct Named {
    const char* name;
    SyntheticWorkload workload;
  };
  const WorkloadOptions options{.seed = 13, .volume_scale = 0.2};
  Named workloads[] = {{"bustracker", MakeBusTracker(options)},
                       {"admissions", MakeAdmissions(options)},
                       {"mooc", MakeMooc(options)},
                       {"noisy_composite", MakeNoisyComposite(options)}};
  for (const Named& entry : workloads) {
    SCOPED_TRACE(entry.name);
    const std::vector<TraceEvent> trace = MakeTrace(entry.workload);
    ASSERT_FALSE(trace.empty());

    QueryBot5000 sync_bot(QuietConfig());
    FeedSync(sync_bot, trace);
    ASSERT_TRUE(sync_bot.RunMaintenance(kTraceEnd, /*force=*/true).ok());

    QueryBot5000 service_bot(QuietConfig());
    // A deliberately small ring so the Overloaded/retry path is exercised
    // while the background thread drains concurrently. Maintenance stays
    // caller-driven on both paths so the comparison is ingest-for-ingest:
    // both bots run it exactly once, forced, at the same instant below.
    QueryBot5000::ServiceOptions sopts;
    sopts.queue_capacity = 8;
    sopts.background = true;
    sopts.auto_maintenance = false;
    ASSERT_TRUE(service_bot.StartService(sopts).ok());
    FeedService(service_bot, trace);
    service_bot.DrainForTest();
    ASSERT_TRUE(service_bot.RunMaintenance(kTraceEnd, /*force=*/true).ok());
    ASSERT_TRUE(service_bot.StopService().ok());

    ExpectSamePipelineState(service_bot, sync_bot, kTraceEnd);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ServiceEquivalence,
                         ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "threads_" + std::to_string(info.param);
                         });

// --- lifecycle ---------------------------------------------------------------

TEST(ServiceTest, LifecycleContracts) {
  QueryBot5000 bot(QuietConfig());
  std::vector<QueryArrival> one{{"SELECT 1", kSecondsPerHour, 1.0}};

  // Not running: producer calls are rejected, stop is an error.
  EXPECT_EQ(bot.EnqueueBatch(one).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(bot.StopService().ok());
  EXPECT_FALSE(bot.service_running());

  QueryBot5000::ServiceOptions foreground;
  foreground.background = false;
  ASSERT_TRUE(bot.StartService(foreground).ok());
  EXPECT_TRUE(bot.service_running());
  EXPECT_FALSE(bot.StartService(foreground).ok())
      << "double start must fail";

  ASSERT_TRUE(bot.EnqueueBatch(one).ok());
  bot.DrainForTest();
  EXPECT_DOUBLE_EQ(bot.preprocessor().total_queries(), 1.0);

  ASSERT_TRUE(bot.StopService().ok());
  EXPECT_FALSE(bot.service_running());
  // Synchronous mode works again after teardown.
  EXPECT_TRUE(bot.Ingest("SELECT 1", 2 * kSecondsPerHour).ok());

  // Restartable: a second service session on the same controller.
  QueryBot5000::ServiceOptions background;
  background.background = true;
  ASSERT_TRUE(bot.StartService(background).ok());
  ASSERT_TRUE(bot.EnqueueBatch(one).ok());
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());
  EXPECT_DOUBLE_EQ(bot.preprocessor().total_queries(), 3.0);
}

TEST(ServiceTest, BackgroundMaintenancePublishesEpochs) {
  QueryBot5000::Config config = QuietConfig();
  config.maintenance_period_seconds = kSecondsPerDay;
  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions sopts;
  sopts.background = true;
  ASSERT_TRUE(bot.StartService(sopts).ok());
  EXPECT_EQ(bot.model_epoch(), 0u);

  auto workload = MakeBusTracker({.seed = 3, .volume_scale = 0.2});
  const std::vector<TraceEvent> trace = MakeTrace(workload);
  FeedService(bot, trace);
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());

  // Two days of virtual time against a one-day period: the background
  // thread must have run maintenance and published at least once, without
  // anyone calling RunMaintenance.
  EXPECT_TRUE(bot.maintenance_has_run());
  EXPECT_GE(bot.model_epoch(), 1u);
  if (kMetricsEnabled) {
    EXPECT_EQ(bot.Metrics().GetGauge("core.model_epoch")->value(),
              static_cast<double>(bot.model_epoch()));
  }
}

TEST(ServiceTest, ConcurrentProducersAndForecastReaders) {
  QueryBot5000::Config config = QuietConfig();
  config.maintenance_period_seconds = kSecondsPerHour;  // churn publications
  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions sopts;
  sopts.queue_capacity = 16;
  sopts.background = true;
  ASSERT_TRUE(bot.StartService(sopts).ok());

  auto workload = MakeBusTracker({.seed = 5, .volume_scale = 0.2});
  const std::vector<TraceEvent> trace = MakeTrace(workload);
  ASSERT_GE(trace.size(), 8u);
  constexpr size_t kProducers = 4;
  constexpr size_t kReaders = 2;
  const size_t shard = trace.size() / kProducers;

  ThreadPool pool(kProducers + kReaders);
  pool.Run(kProducers + kReaders, [&](size_t task) {
    if (task < kProducers) {
      size_t from = task * shard;
      size_t to = task + 1 == kProducers ? trace.size() : from + shard;
      FeedService(bot, trace, from, to);
      return;
    }
    // Reader lane: bounded forecasts race the drain and the epoch swaps.
    // Failures (nothing modeled yet) are fine; crashes and races are not.
    for (int i = 0; i < 200; ++i) {
      (void)bot.Forecast(kTraceEnd, kSecondsPerHour, /*budget_seconds=*/0.01);
      (void)bot.model_epoch();
    }
  });

  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());
  // Every arrival admitted exactly once: kOverloaded retries never double
  // apply and the ring never drops a chunk it accepted.
  EXPECT_DOUBLE_EQ(bot.preprocessor().total_queries(),
                   static_cast<double>(trace.size()));
}

// --- incremental durability ---------------------------------------------------

TEST(ServiceTest, DeltaCheckpointRestoresExactLiveState) {
  const std::string path = TestDir() + "/delta_roundtrip.qbc";
  RemoveCheckpointFiles(Env::Default(), path);
  QueryBot5000::Config config = QuietConfig();

  QueryBot5000 bot(config);
  QueryBot5000::ServiceOptions sopts;
  sopts.background = false;
  sopts.checkpoint_path = path;
  sopts.checkpoint_period_seconds = 6 * kSecondsPerHour;
  sopts.compact_every = 1000;
  ASSERT_TRUE(bot.StartService(sopts).ok());

  auto workload = MakeBusTracker({.seed = 11, .volume_scale = 0.2});
  const std::vector<TraceEvent> trace = MakeTrace(workload);
  // First drain writes the full base; later drains cross checkpoint
  // periods and write delta sidecars on top of it.
  const size_t half = trace.size() / 2;
  FeedService(bot, trace, 0, half);
  bot.DrainForTest();
  ASSERT_TRUE(Env::Default()->FileExists(path)) << "full base not written";
  FeedService(bot, trace, half);
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());
  ASSERT_TRUE(Env::Default()->FileExists(path + ".delta"))
      << "no delta sidecar after un-compacted periods";

  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(report.delta_applied) << report.detail;
  EXPECT_FALSE(report.used_backup);
  EXPECT_FALSE(report.reclustered) << report.detail;

  // The sidecar closes the gap completely: restored state equals the live
  // bot at shutdown, not the state of the last full snapshot.
  auto live_ids = bot.preprocessor().TemplateIds();
  ASSERT_EQ(restored->preprocessor().TemplateIds(), live_ids);
  EXPECT_DOUBLE_EQ(restored->preprocessor().total_queries(),
                   bot.preprocessor().total_queries());
  for (TemplateId id : live_ids) {
    const auto* a = bot.preprocessor().GetTemplate(id);
    const auto* b = restored->preprocessor().GetTemplate(id);
    ASSERT_NE(b, nullptr) << "template " << id << " lost in delta replay";
    EXPECT_EQ(b->fingerprint, a->fingerprint);
    EXPECT_EQ(b->last_seen, a->last_seen) << "template " << id;
    EXPECT_DOUBLE_EQ(b->history.Total(), a->history.Total())
        << "template " << id;
    auto sa = a->history.Series(kSecondsPerHour, 0, kTraceEnd);
    auto sb = b->history.Series(kSecondsPerHour, 0, kTraceEnd);
    ASSERT_TRUE(sa.ok() && sb.ok());
    ASSERT_EQ(sb->size(), sa->size());
    for (size_t i = 0; i < sa->size(); ++i) {
      EXPECT_DOUBLE_EQ(sb->values()[i], sa->values()[i])
          << "template " << id << " bucket " << i;
    }
  }
}

TEST(ServiceTest, CompactionFoldsDeltasIntoFullSnapshots) {
  const std::string path = TestDir() + "/compaction.qbc";
  RemoveCheckpointFiles(Env::Default(), path);
  QueryBot5000::Config config = QuietConfig();

  QueryBot5000 bot(config);
  // compact_every=1: every periodic write is promoted to a full snapshot,
  // so no sidecar may survive shutdown.
  QueryBot5000::ServiceOptions sopts;
  sopts.background = false;
  sopts.checkpoint_path = path;
  sopts.checkpoint_period_seconds = 6 * kSecondsPerHour;
  sopts.compact_every = 1;
  ASSERT_TRUE(bot.StartService(sopts).ok());
  auto workload = MakeBusTracker({.seed = 11, .volume_scale = 0.2});
  const std::vector<TraceEvent> trace = MakeTrace(workload);
  FeedService(bot, trace);
  bot.DrainForTest();
  ASSERT_TRUE(bot.StopService().ok());

  EXPECT_FALSE(Env::Default()->FileExists(path + ".delta"))
      << "compaction must delete the folded sidecar";
  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(report.delta_applied);
  EXPECT_DOUBLE_EQ(restored->preprocessor().total_queries(),
                   bot.preprocessor().total_queries());
}

}  // namespace
}  // namespace qb5000

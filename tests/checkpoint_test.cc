// Checkpoint/restore for the full pipeline (core/checkpoint.cc), proved
// under deterministic fault injection:
//   * crash at every I/O op during Checkpoint() -> Restore() always yields
//     either the previous complete checkpoint or the new one, never a half
//     state (the ISSUE's acceptance invariant);
//   * every single-bit flip is caught by a section CRC or the container
//     parse — a restore never silently returns wrong data;
//   * a corrupt clusterer/controller section degrades (re-cluster from the
//     restored histories / reset maintenance state) instead of failing cold;
//   * checkpoint-mid-trace then restore forecasts like the uninterrupted
//     run, across all four workload generators.
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/qb5000.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

std::string TestDir() {
  std::string dir = ::testing::TempDir() + "qb5000_checkpoint_test";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveAllVersions(Env* env, const std::string& path) {
  for (const std::string& p :
       {path, AtomicFileWriter::BackupPath(path),
        AtomicFileWriter::TempPath(path)}) {
    if (env->FileExists(p)) {
      ASSERT_TRUE(env->DeleteFile(p).ok());
    }
  }
}

/// Small, fast, but fully representative pipeline configuration.
QueryBot5000::Config FastConfig() {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  config.clusterer.feature.num_samples = 48;
  config.clusterer.feature.window_seconds = 2 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour};
  return config;
}

QueryBot5000 MakeTrainedBot(const QueryBot5000::Config& config, Timestamp upto,
                            uint64_t seed) {
  QueryBot5000 bot(config);
  auto workload = MakeBusTracker({.seed = seed, .volume_scale = 0.2});
  EXPECT_TRUE(workload
                  .FeedAggregated(bot.mutable_preprocessor(), 0, upto,
                                  10 * kSecondsPerMinute, seed)
                  .ok());
  EXPECT_TRUE(bot.RunMaintenance(upto, /*force=*/true).ok());
  return bot;
}

void ExpectSameState(const QueryBot5000& restored, const QueryBot5000& original,
                     Timestamp series_to) {
  // Preprocessor: templates and histories identical.
  ASSERT_EQ(restored.preprocessor().num_templates(),
            original.preprocessor().num_templates());
  for (TemplateId id : original.preprocessor().TemplateIds()) {
    const auto* a = original.preprocessor().GetTemplate(id);
    const auto* b = restored.preprocessor().GetTemplate(id);
    ASSERT_NE(b, nullptr) << "template " << id << " lost";
    EXPECT_EQ(b->fingerprint, a->fingerprint);
    EXPECT_DOUBLE_EQ(b->history.Total(), a->history.Total());
    auto sa = a->history.Series(kSecondsPerHour, 0, series_to);
    auto sb = b->history.Series(kSecondsPerHour, 0, series_to);
    ASSERT_TRUE(sa.ok() && sb.ok());
    ASSERT_EQ(sb->size(), sa->size());
    for (size_t i = 0; i < sa->size(); ++i) {
      EXPECT_DOUBLE_EQ(sb->values()[i], sa->values()[i]);
    }
  }
  // Clusterer: identical clusters, centers, members, volumes, id counter.
  ASSERT_EQ(restored.clusterer().clusters().size(),
            original.clusterer().clusters().size());
  EXPECT_EQ(restored.clusterer().next_cluster_id(),
            original.clusterer().next_cluster_id());
  EXPECT_EQ(restored.clusterer().last_update_time(),
            original.clusterer().last_update_time());
  for (const auto& [id, cluster] : original.clusterer().clusters()) {
    auto it = restored.clusterer().clusters().find(id);
    ASSERT_NE(it, restored.clusterer().clusters().end()) << "cluster " << id;
    EXPECT_EQ(it->second.members, cluster.members);
    EXPECT_DOUBLE_EQ(it->second.volume, cluster.volume);
    ASSERT_EQ(it->second.center.size(), cluster.center.size());
    for (size_t i = 0; i < cluster.center.size(); ++i) {
      EXPECT_DOUBLE_EQ(it->second.center[i], cluster.center[i]);
    }
  }
  for (TemplateId id : original.preprocessor().TemplateIds()) {
    EXPECT_EQ(restored.clusterer().AssignmentOf(id),
              original.clusterer().AssignmentOf(id));
  }
  // Controller: maintenance clock and modeled set.
  EXPECT_EQ(restored.maintenance_has_run(), original.maintenance_has_run());
  if (original.maintenance_has_run()) {
    EXPECT_EQ(restored.last_maintenance(), original.last_maintenance());
  }
  EXPECT_EQ(restored.forecaster().modeled_clusters(),
            original.forecaster().modeled_clusters());
}

TEST(CheckpointTest, RoundTripRestoresFullPipeline) {
  const std::string path = TestDir() + "/roundtrip.qbc";
  RemoveAllVersions(Env::Default(), path);
  QueryBot5000::Config config = FastConfig();
  QueryBot5000 original = MakeTrainedBot(config, 3 * kSecondsPerDay, 11);

  ASSERT_TRUE(original.Checkpoint(path).ok());
  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_FALSE(report.used_backup);
  EXPECT_FALSE(report.reclustered);
  EXPECT_FALSE(report.controller_defaults);
  EXPECT_TRUE(report.forecaster_trained) << report.detail;

  ExpectSameState(*restored, original, 3 * kSecondsPerDay);

  // The retrained forecaster answers like the original (same model family,
  // same training data, same seed).
  auto fa = original.Forecast(3 * kSecondsPerDay, kSecondsPerHour);
  auto fb = restored->Forecast(3 * kSecondsPerDay, kSecondsPerHour);
  ASSERT_TRUE(fa.ok() && fb.ok());
  ASSERT_EQ(fb->clusters, fa->clusters);
  for (size_t i = 0; i < fa->queries_per_interval.size(); ++i) {
    EXPECT_NEAR(fb->queries_per_interval[i], fa->queries_per_interval[i],
                1e-6 * (1.0 + std::fabs(fa->queries_per_interval[i])));
  }

  // A restored pipeline keeps running: ingest + maintenance + forecast.
  ASSERT_TRUE(restored
                  ->Ingest("SELECT route_name FROM routes WHERE route_id = 5",
                           3 * kSecondsPerDay + 60)
                  .ok());
  ASSERT_TRUE(restored->RunMaintenance(4 * kSecondsPerDay, true).ok());
  EXPECT_TRUE(restored->Forecast(4 * kSecondsPerDay, kSecondsPerHour).ok());
}

TEST(CheckpointTest, MissingFileFailsCleanly) {
  auto restored = QueryBot5000::Restore(TestDir() + "/never_written.qbc",
                                        FastConfig());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
}

// The acceptance invariant: crash the writer at every I/O op index; after
// each crash the checkpoint must load as EITHER the old complete state OR
// the new complete state — never a half state, never a degraded salvage.
class CheckpointCrashSweep
    : public ::testing::TestWithParam<FaultInjectingEnv::FaultKind> {};

TEST_P(CheckpointCrashSweep, EveryCrashPointLeavesOldOrNew) {
  // Parameter-unique path: ctest runs the two sweep instances in parallel.
  const std::string path = TestDir() + "/crash_sweep_" +
                           std::to_string(static_cast<int>(GetParam())) +
                           ".qbc";
  QueryBot5000::Config config = FastConfig();
  QueryBot5000 bot_old = MakeTrainedBot(config, 2 * kSecondsPerDay, 21);
  QueryBot5000 bot_new = MakeTrainedBot(config, 3 * kSecondsPerDay, 21);
  const double old_total = bot_old.preprocessor().total_queries();
  const double new_total = bot_new.preprocessor().total_queries();
  ASSERT_NE(old_total, new_total);

  FaultInjectingEnv env(nullptr);

  // Count the ops of a clean overwrite (old checkpoint already present).
  RemoveAllVersions(Env::Default(), path);
  ASSERT_TRUE(bot_old.Checkpoint(path, &env).ok());
  env.Reset();
  ASSERT_TRUE(bot_new.Checkpoint(path, &env).ok());
  const int64_t total_ops = env.ops_issued();
  ASSERT_GT(total_ops, 10);

  for (int64_t op = 0; op < total_ops; ++op) {
    SCOPED_TRACE("crash at op " + std::to_string(op));
    // Fixture: a committed old checkpoint, no backup, no temp leftovers.
    RemoveAllVersions(Env::Default(), path);
    env.Reset();
    ASSERT_TRUE(bot_old.Checkpoint(path, &env).ok());

    env.Reset();
    env.InjectFault(GetParam(), op);
    Status st = bot_new.Checkpoint(path, &env);
    EXPECT_FALSE(st.ok());  // every op < total_ops is on the commit path

    env.Reset();  // the "restarted process" sees a healthy filesystem
    RestoreReport report;
    auto restored = QueryBot5000::Restore(path, config, &env, &report);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    double got = restored->preprocessor().total_queries();
    bool is_old = std::fabs(got - old_total) < 1e-9;
    bool is_new = std::fabs(got - new_total) < 1e-9;
    EXPECT_TRUE(is_old || is_new) << "half state restored: " << got;
    // A crash can cost us the newest checkpoint, but never section
    // integrity: no salvage paths may be needed.
    EXPECT_FALSE(report.reclustered) << report.detail;
    EXPECT_FALSE(report.controller_defaults) << report.detail;
  }

  // Sanity: with no fault armed the new checkpoint lands.
  RemoveAllVersions(Env::Default(), path);
  env.Reset();
  ASSERT_TRUE(bot_old.Checkpoint(path, &env).ok());
  ASSERT_TRUE(bot_new.Checkpoint(path, &env).ok());
  auto restored = QueryBot5000::Restore(path, config, &env);
  ASSERT_TRUE(restored.ok());
  EXPECT_NEAR(restored->preprocessor().total_queries(), new_total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FaultKinds, CheckpointCrashSweep,
    ::testing::Values(FaultInjectingEnv::FaultKind::kCrash,
                      FaultInjectingEnv::FaultKind::kTornWrite));

// Flip one bit at many positions across the checkpoint file (no backup to
// fall to): a restore must either fail or return exactly the original
// state — wrong data must never load silently.
TEST(CheckpointTest, BitFlipCorruptionNeverLoadsSilently) {
  const std::string path = TestDir() + "/bitflip.qbc";
  Env* env = Env::Default();
  RemoveAllVersions(env, path);
  QueryBot5000::Config config = FastConfig();
  QueryBot5000 original = MakeTrainedBot(config, 2 * kSecondsPerDay, 31);
  ASSERT_TRUE(original.Checkpoint(path).ok());
  const std::string clean = *ReadFileToString(env, path);
  const double clean_total = original.preprocessor().total_queries();

  // Sample flip positions across the whole file, plus the start/middle/end
  // of every section payload so the small clusterer/controller sections are
  // guaranteed coverage.
  std::set<size_t> positions;
  for (size_t pos = 0; pos < clean.size();
       pos += std::max<size_t>(1, clean.size() / 40)) {
    positions.insert(pos);
  }
  for (const char* name : {"preprocessor", "clusterer", "controller"}) {
    size_t header = clean.find(std::string("section ") + name);
    ASSERT_NE(header, std::string::npos) << name;
    // Parse the header's own length field: payload bytes are free-form and
    // could legitimately contain anything, including section-like text.
    std::istringstream fields(
        clean.substr(header, clean.find('\n', header) - header));
    std::string keyword, parsed_name;
    size_t length = 0;
    ASSERT_TRUE(static_cast<bool>(fields >> keyword >> parsed_name >> length));
    ASSERT_GT(length, 0u);
    size_t start = clean.find('\n', header) + 1;
    positions.insert(
        {header + 2, start, start + length / 2, start + length - 1});
  }

  size_t checked = 0, degraded = 0, rejected = 0;
  for (size_t pos : positions) {
    std::string corrupt = clean;
    corrupt[pos] ^= 0x04;
    ASSERT_TRUE(WriteStringToFile(env, corrupt, path).ok());
    RestoreReport report;
    auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
    ++checked;
    if (!restored.ok()) {
      ++rejected;
      continue;
    }
    if (report.reclustered || report.controller_defaults) ++degraded;
    // Whatever survived must be the true preprocessor state.
    EXPECT_NEAR(restored->preprocessor().total_queries(), clean_total, 1e-9)
        << "flip at byte " << pos << " loaded silently-wrong data";
    EXPECT_EQ(restored->preprocessor().num_templates(),
              original.preprocessor().num_templates());
  }
  // The sweep must have hit every section: some flips rejected outright
  // (preprocessor payload / headers), some degraded (clusterer/controller).
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(degraded, 0u);
  ASSERT_GT(checked, 40u);
}

TEST(CheckpointTest, CorruptClustererSectionDegradesToRecluster) {
  const std::string path = TestDir() + "/degrade.qbc";
  Env* env = Env::Default();
  RemoveAllVersions(env, path);
  QueryBot5000::Config config = FastConfig();
  QueryBot5000 original = MakeTrainedBot(config, 3 * kSecondsPerDay, 41);
  ASSERT_TRUE(original.Checkpoint(path).ok());

  // Flip a byte inside the clusterer payload (just past its header line).
  std::string data = *ReadFileToString(env, path);
  size_t header = data.find("section clusterer");
  ASSERT_NE(header, std::string::npos);
  size_t payload = data.find('\n', header) + 1;
  data[payload + 4] ^= 0x20;
  ASSERT_TRUE(WriteStringToFile(env, data, path).ok());

  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(report.reclustered) << report.detail;
  EXPECT_FALSE(report.controller_defaults);
  // The preprocessor came through unharmed...
  EXPECT_NEAR(restored->preprocessor().total_queries(),
              original.preprocessor().total_queries(), 1e-9);
  // ...and the clusterer was rebuilt from the histories: templates are
  // assigned again and the pipeline can forecast after retraining.
  EXPECT_FALSE(restored->clusterer().clusters().empty());
  for (TemplateId id : restored->preprocessor().TemplateIds()) {
    EXPECT_NE(restored->clusterer().AssignmentOf(id), -1);
  }
  EXPECT_FALSE(restored->ModeledClusters().empty());
}

TEST(CheckpointTest, BackupLadderRecoversPreviousCheckpoint) {
  const std::string path = TestDir() + "/ladder.qbc";
  Env* env = Env::Default();
  RemoveAllVersions(env, path);
  QueryBot5000::Config config = FastConfig();
  QueryBot5000 bot_old = MakeTrainedBot(config, 2 * kSecondsPerDay, 51);
  QueryBot5000 bot_new = MakeTrainedBot(config, 3 * kSecondsPerDay, 51);
  ASSERT_TRUE(bot_old.Checkpoint(path).ok());
  ASSERT_TRUE(bot_new.Checkpoint(path).ok());  // rotates old to .bak

  // Trash the *preprocessor* payload of the primary: unrecoverable there.
  std::string data = *ReadFileToString(env, path);
  size_t header = data.find("section preprocessor");
  ASSERT_NE(header, std::string::npos);
  size_t payload = data.find('\n', header) + 1;
  data[payload + 8] ^= 0x08;
  ASSERT_TRUE(WriteStringToFile(env, data, path).ok());

  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(report.used_backup);
  EXPECT_NEAR(restored->preprocessor().total_queries(),
              bot_old.preprocessor().total_queries(), 1e-9);

  // With the backup gone too, the same corruption is a clean failure.
  ASSERT_TRUE(env->DeleteFile(AtomicFileWriter::BackupPath(path)).ok());
  auto failed = QueryBot5000::Restore(path, config);
  EXPECT_FALSE(failed.ok());
}

// Satellite: checkpoint mid-trace on every workload generator, restore into
// a fresh pipeline, continue both, and the forecasts must agree.
class CheckpointWorkloadSweep : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointWorkloadSweep, MidTraceRestoreForecastsLikeUninterrupted) {
  WorkloadOptions options{.seed = 5, .volume_scale = 0.15};
  SyntheticWorkload workload = [&] {
    switch (GetParam()) {
      case 0:
        return MakeAdmissions(options);
      case 1:
        return MakeBusTracker(options);
      case 2:
        return MakeMooc(options);
      default:
        return MakeNoisyComposite(options);
    }
  }();
  const std::string path = TestDir() + "/midtrace_" +
                           std::to_string(GetParam()) + ".qbc";
  RemoveAllVersions(Env::Default(), path);

  QueryBot5000::Config config = FastConfig();
  const Timestamp kSplit = 3 * kSecondsPerDay;
  const Timestamp kEnd = 5 * kSecondsPerDay;
  const int64_t kStep = 10 * kSecondsPerMinute;

  QueryBot5000 uninterrupted(config);
  ASSERT_TRUE(workload
                  .FeedAggregated(uninterrupted.mutable_preprocessor(), 0,
                                  kSplit, kStep, 7)
                  .ok());
  ASSERT_TRUE(uninterrupted.RunMaintenance(kSplit, true).ok());
  ASSERT_TRUE(uninterrupted.Checkpoint(path).ok());

  // "Kill" the process; come back up from the checkpoint.
  RestoreReport report;
  auto resumed = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(report.used_backup);
  EXPECT_FALSE(report.reclustered);

  // Both replicas see the identical remainder of the trace.
  for (QueryBot5000* bot : {&uninterrupted, &*resumed}) {
    ASSERT_TRUE(workload
                    .FeedAggregated(bot->mutable_preprocessor(), kSplit, kEnd,
                                    kStep, 8)
                    .ok());
    ASSERT_TRUE(bot->RunMaintenance(kEnd, true).ok());
  }

  auto fa = uninterrupted.Forecast(kEnd, kSecondsPerHour);
  auto fb = resumed->Forecast(kEnd, kSecondsPerHour);
  ASSERT_TRUE(fa.ok()) << fa.status().ToString();
  ASSERT_TRUE(fb.ok()) << fb.status().ToString();
  ASSERT_EQ(fb->clusters, fa->clusters);
  ASSERT_EQ(fb->queries_per_interval.size(), fa->queries_per_interval.size());
  for (size_t i = 0; i < fa->queries_per_interval.size(); ++i) {
    EXPECT_NEAR(fb->queries_per_interval[i], fa->queries_per_interval[i],
                1e-6 * (1.0 + std::fabs(fa->queries_per_interval[i])))
        << "cluster " << fa->clusters[i];
  }
}

std::string WorkloadName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"admissions", "bustracker", "mooc",
                                       "noisy"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, CheckpointWorkloadSweep,
                         ::testing::Values(0, 1, 2, 3), WorkloadName);

TEST(CheckpointTest, CheckpointConcurrentWithForecasting) {
  // Checkpoint() and Forecast() both take the controller's state lock
  // shared, so they may genuinely overlap. Drive one checkpointing lane
  // against three forecasting lanes on the pool (raw std::thread is banned
  // by qb_lint; ParallelFor tasks at concurrency >= 4 overlap the same
  // way) and require every operation to succeed, forecasts to stay
  // bit-identical to the quiescent answer, and the final checkpoint to
  // restore cleanly. The TSan CI job proves the absence of data races on
  // this same path.
  const std::string path = TestDir() + "/concurrent.qbc";
  RemoveAllVersions(Env::Default(), path);
  size_t saved_threads = GetThreadCount();
  SetThreadCount(4);
  QueryBot5000::Config config = FastConfig();
  QueryBot5000 bot = MakeTrainedBot(config, 3 * kSecondsPerDay, 11);

  auto quiescent = bot.Forecast(3 * kSecondsPerDay, kSecondsPerHour);
  ASSERT_TRUE(quiescent.ok());

  constexpr size_t kLanes = 4;
  constexpr size_t kOpsPerLane = 8;
  std::vector<Status> lane_status(kLanes, Status::Ok());
  ParallelFor(0, kLanes, 1, [&](size_t lo, size_t hi) {
    for (size_t lane = lo; lane < hi; ++lane) {
      for (size_t op = 0; op < kOpsPerLane && lane_status[lane].ok(); ++op) {
        if (lane == 0) {
          lane_status[lane] = bot.Checkpoint(path);
        } else {
          auto f = bot.Forecast(3 * kSecondsPerDay, kSecondsPerHour);
          if (!f.ok()) {
            lane_status[lane] = f.status();
            continue;
          }
          if (f->queries_per_interval != quiescent->queries_per_interval) {
            lane_status[lane] =
                Status::Internal("forecast changed under concurrency");
          }
          (void)bot.ModeledClusters();
        }
      }
    }
  });
  for (size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_TRUE(lane_status[lane].ok())
        << "lane " << lane << ": " << lane_status[lane].ToString();
  }

  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameState(*restored, bot, 3 * kSecondsPerDay);
  SetThreadCount(saved_threads);
}

// The raw-SQL template cache (DESIGN.md §11) is rebuildable state: it is
// never serialized, restores cold regardless of the configured capacity,
// and rebuilds transparently — re-ingested SQL maps to the restored
// template ids, so RestoreReport semantics are unchanged by the cache.
TEST(CheckpointTest, TemplateCacheRestoresColdAndRebuilds) {
  const std::string path = TestDir() + "/cache_cold.qbc";
  RemoveAllVersions(Env::Default(), path);
  QueryBot5000::Config config = FastConfig();
  config.preprocessor.template_cache_capacity = 128;
  config.preprocessor.expected_templates = 64;
  QueryBot5000 original = MakeTrainedBot(config, 3 * kSecondsPerDay, 11);

  // Populate the cache through the raw-SQL path and remember the mapping.
  const std::string sql = "SELECT route_name FROM routes WHERE route_id = 5";
  auto id = original.mutable_preprocessor().Ingest(sql, 3 * kSecondsPerDay);
  ASSERT_TRUE(id.ok());
  ASSERT_GT(original.preprocessor().cache_size(), 0u);

  ASSERT_TRUE(original.Checkpoint(path).ok());
  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // A clean restore stays clean: the cache adds no degradation modes.
  EXPECT_FALSE(report.used_backup);
  EXPECT_FALSE(report.reclustered);
  EXPECT_FALSE(report.controller_defaults);
  EXPECT_TRUE(report.forecaster_trained) << report.detail;

  // Cold cache, intact templates.
  EXPECT_EQ(restored->preprocessor().cache_size(), 0u);
  EXPECT_EQ(restored->preprocessor().num_templates(),
            original.preprocessor().num_templates());

  // The first re-ingest misses and refills the cache with the restored id;
  // a literal-rewritten repeat then hits and maps to the same template.
  auto remiss = restored->mutable_preprocessor().Ingest(
      sql, 3 * kSecondsPerDay + kSecondsPerMinute);
  ASSERT_TRUE(remiss.ok());
  EXPECT_EQ(remiss.value(), id.value());
  EXPECT_EQ(restored->preprocessor().cache_size(), 1u);
  auto rehit = restored->mutable_preprocessor().Ingest(
      "SELECT route_name FROM routes WHERE route_id = 99",
      3 * kSecondsPerDay + 2 * kSecondsPerMinute);
  ASSERT_TRUE(rehit.ok());
  EXPECT_EQ(rehit.value(), id.value());
  EXPECT_EQ(restored->preprocessor().cache_size(), 1u);
}

}  // namespace
}  // namespace qb5000

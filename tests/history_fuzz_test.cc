// Seeded fuzz-differential suite for the compressed ArrivalHistory
// (DESIGN.md §15): every observable — Series/WindowInto output, totals,
// encodings — must be bit-identical to a dense reference model fed the same
// operations, across random Record/Compact/CompactArchive schedules,
// checkpoint round-trips, and spill + reload.

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/compressed_series.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "preprocessor/arrival_history.h"
#include "preprocessor/history_spill.h"
#include "preprocessor/snapshot.h"

namespace qb5000 {
namespace {

// Counts whose sums are exact in double arithmetic in any addition order
// (integers and halves): order-independence assertions stay meaningful.
constexpr double kCounts[] = {1.0, 2.0, 3.0, 5.0, 12.0, 0.5, 70000.0};

double PickCount(Rng& rng) {
  // Mostly small integers, occasionally fractional or narrow-overflowing.
  uint64_t roll = rng.UniformInt(0, 19);
  if (roll < 15) return kCounts[roll % 5];
  return kCounts[5 + roll % 2];
}

// --- dense reference model --------------------------------------------------
// The pre-compression ArrivalHistory: dense TimeSeries rungs, identical
// routing / fold / spread logic. Iteration skips zero buckets exactly like
// the compressed path skips gaps, so floating-point addition order matches.
struct DenseHistory {
  TimeSeries recent{0, kSecondsPerMinute};
  TimeSeries archive{0, kSecondsPerHour};
  TimeSeries daily{0, kSecondsPerDay};
  double total = 0.0;
  Timestamp last_arrival = 0;

  void Record(Timestamp ts, double count) {
    total += count;
    last_arrival = std::max(last_arrival, ts);
    Timestamp archive_start =
        archive.empty() ? recent.start() : archive.start();
    if (!daily.empty() && ts < archive_start) {
      daily.Add(ts, count);
      return;
    }
    if (!archive.empty() && ts < recent.start()) {
      archive.Add(ts, count);
      return;
    }
    recent.Add(ts, count);
  }

  void Compact(Timestamp before) {
    before = AlignDown(before, kSecondsPerHour);
    if (recent.empty() || before <= recent.start()) return;
    Timestamp cutoff = std::min(before, recent.end());
    for (size_t i = 0; i < recent.size(); ++i) {
      Timestamp t = recent.TimeAt(i);
      if (t >= cutoff) break;
      if (recent.values()[i] != 0.0) archive.Add(t, recent.values()[i]);
    }
    TimeSeries rebuilt(cutoff, kSecondsPerMinute);
    for (size_t i = 0; i < recent.size(); ++i) {
      Timestamp t = recent.TimeAt(i);
      if (t < cutoff) continue;
      if (recent.values()[i] != 0.0) rebuilt.Add(t, recent.values()[i]);
    }
    recent = std::move(rebuilt);
  }

  void CompactArchive(Timestamp before) {
    before = AlignDown(before, kSecondsPerDay);
    if (archive.empty() || before <= archive.start()) return;
    Timestamp cutoff = std::min(before, archive.end());
    for (size_t i = 0; i < archive.size(); ++i) {
      Timestamp t = archive.TimeAt(i);
      if (t >= cutoff) break;
      if (archive.values()[i] != 0.0) daily.Add(t, archive.values()[i]);
    }
    TimeSeries rebuilt(cutoff, kSecondsPerHour);
    for (size_t i = 0; i < archive.size(); ++i) {
      Timestamp t = archive.TimeAt(i);
      if (t < cutoff) continue;
      if (archive.values()[i] != 0.0) rebuilt.Add(t, archive.values()[i]);
    }
    archive = std::move(rebuilt);
  }

  TimeSeries Window(int64_t interval, Timestamp from, Timestamp to) const {
    from = AlignDown(from, interval);
    to = AlignDown(to + interval - 1, interval);
    TimeSeries out;
    if (to <= from) {
      out.Reset(from, interval, 0);
      return out;
    }
    size_t n = static_cast<size_t>((to - from) / interval);
    out.Reset(from, interval, n);
    auto values = out.mutable_values();
    for (size_t i = 0; i < recent.size(); ++i) {
      Timestamp t = recent.TimeAt(i);
      double v = recent.values()[i];
      if (t < from || t >= to || v == 0.0) continue;
      values[static_cast<size_t>((t - from) / interval)] += v;
    }
    auto spread = [&](const TimeSeries& rung, int64_t rung_interval) {
      for (size_t i = 0; i < rung.size(); ++i) {
        Timestamp t = rung.TimeAt(i);
        double value = rung.values()[i];
        if (t <= from - rung_interval || t >= to || value == 0.0) continue;
        if (interval >= rung_interval) {
          size_t bucket =
              static_cast<size_t>((std::max(t, from) - from) / interval);
          if (bucket < n) values[bucket] += value;
        } else {
          int64_t sub = rung_interval / interval;
          double share = value / static_cast<double>(sub);
          for (int64_t s = 0; s < sub; ++s) {
            Timestamp st = t + s * interval;
            if (st < from || st >= to) continue;
            values[static_cast<size_t>((st - from) / interval)] += share;
          }
        }
      }
    };
    spread(archive, kSecondsPerHour);
    spread(daily, kSecondsPerDay);
    return out;
  }
};

std::string Encoded(const ArrivalHistory& history) {
  std::ostringstream out;
  out.precision(17);
  EXPECT_TRUE(history.EncodeResolved(out).ok());
  return out.str();
}

void ExpectSameWindow(const ArrivalHistory& compressed,
                      const DenseHistory& dense, int64_t interval,
                      Timestamp from, Timestamp to) {
  auto got = compressed.Series(interval, from, to);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  TimeSeries want = dense.Window(interval, from, to);
  ASSERT_EQ(got->size(), want.size()) << "interval " << interval;
  ASSERT_EQ(got->start(), want.start());
  for (size_t i = 0; i < want.size(); ++i) {
    // Bit-identical, not approximately equal: the compressed path must
    // perform the same additions in the same order as the dense one.
    ASSERT_EQ(got->values()[i], want.values()[i])
        << "interval " << interval << " bucket " << i << " at "
        << want.TimeAt(i);
  }
}

void ExpectMatchesDense(const ArrivalHistory& compressed,
                        const DenseHistory& dense, Timestamp span_end) {
  ASSERT_EQ(compressed.Total(), dense.total);
  ASSERT_EQ(compressed.last_arrival(), dense.last_arrival);
  for (int64_t interval : {kSecondsPerMinute, 5 * kSecondsPerMinute,
                           kSecondsPerHour, kSecondsPerDay}) {
    ExpectSameWindow(compressed, dense, interval, 0, span_end);
    // An interior window exercises the range-clipping paths.
    ExpectSameWindow(compressed, dense, interval, span_end / 3,
                     2 * span_end / 3);
  }
  TimeSeries scratch;
  TimeSeries window = dense.Window(kSecondsPerMinute, 0, span_end);
  ASSERT_EQ(compressed.RangeTotal(0, span_end, &scratch), window.Total());
}

// One random operation schedule applied to both models.
void RunFuzzSchedule(uint64_t seed, bool with_spill) {
  Rng rng(seed);
  ArrivalHistory compressed;
  DenseHistory dense;
  HistorySpillStore store(nullptr, "/tmp/qb5000_history_fuzz_spill_" +
                                       std::to_string(seed) + ".bin");
  if (with_spill) {
    ASSERT_TRUE(store.Open().ok());
  }

  Timestamp cursor = kSecondsPerDay;
  const Timestamp span_end = 50 * kSecondsPerDay;
  for (int op = 0; op < 600; ++op) {
    uint64_t roll = rng.UniformInt(0, 99);
    if (roll < 80) {
      // Mostly forward arrivals with jitter; some genuinely late ones.
      cursor += rng.UniformInt(0, 2 * kSecondsPerHour);
      Timestamp ts = cursor;
      if (rng.UniformInt(0, 9) == 0) {
        ts -= rng.UniformInt(0, 3 * kSecondsPerDay);
      }
      ts = std::max<Timestamp>(ts, 0);
      double count = PickCount(rng);
      compressed.Record(ts, count);
      dense.Record(ts, count);
    } else if (roll < 90) {
      Timestamp before = cursor - kSecondsPerDay;
      compressed.Compact(before);
      dense.Compact(before);
    } else if (roll < 95) {
      Timestamp before = cursor - 7 * kSecondsPerDay;
      compressed.CompactArchive(before);
      dense.CompactArchive(before);
    } else if (with_spill) {
      // Full compaction then spill; reads below go through the store.
      Timestamp fold = cursor + kSecondsPerDay;
      compressed.Compact(fold);
      dense.Compact(fold);
      if (compressed.SpillEligible()) {
        ASSERT_TRUE(compressed.Spill(&store).ok());
      }
    }
    if (op % 97 == 0) ExpectMatchesDense(compressed, dense, span_end);
  }
  ExpectMatchesDense(compressed, dense, span_end);

  // Checkpoint round-trip: encode -> decode -> encode is byte-identical and
  // the decoded history still matches the dense reference.
  std::string encoded = Encoded(compressed);
  std::istringstream in(encoded);
  auto decoded = ArrivalHistory::DecodeFrom(in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(Encoded(*decoded), encoded);
  ExpectMatchesDense(*decoded, dense, span_end);

  if (with_spill && compressed.spilled()) {
    // Reload: rehydration restores the exact resident state.
    ASSERT_TRUE(compressed.Rehydrate().ok());
    ASSERT_FALSE(compressed.spilled());
    ASSERT_EQ(Encoded(compressed), encoded);
    ExpectMatchesDense(compressed, dense, span_end);
  }
}

TEST(HistoryFuzz, CompressedMatchesDenseReference) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunFuzzSchedule(seed, /*with_spill=*/false);
  }
}

TEST(HistoryFuzz, CompressedMatchesDenseReferenceWithSpill) {
  for (uint64_t seed = 101; seed <= 106; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunFuzzSchedule(seed, /*with_spill=*/true);
  }
}

TEST(HistoryFuzz, SeriesLevelDifferentialUnderRandomOrder) {
  // CompressedSeries vs dense TimeSeries under the same out-of-order Adds:
  // coverage, point lookups, and totals all agree.
  for (uint64_t seed = 11; seed <= 16; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    CompressedSeries compressed(0, kSecondsPerMinute);
    TimeSeries dense(0, kSecondsPerMinute);
    for (int i = 0; i < 400; ++i) {
      Timestamp ts = rng.UniformInt(0, 3 * kSecondsPerDay);
      double count = PickCount(rng);
      compressed.Add(ts, count);
      dense.Add(ts, count);
    }
    ASSERT_EQ(compressed.start(), dense.start());
    ASSERT_EQ(compressed.end(), dense.end());
    ASSERT_EQ(compressed.Total(), dense.Total());
    for (Timestamp t = compressed.start() - kSecondsPerHour;
         t < compressed.end() + kSecondsPerHour; t += kSecondsPerMinute) {
      ASSERT_EQ(compressed.ValueAt(t), dense.ValueAt(t)) << "bucket " << t;
    }
  }
}

TEST(HistoryFuzz, EncodingIsIndependentOfArrivalOrder) {
  // The canonical-run-structure guarantee: any permutation of the same
  // (timestamp, count) multiset serializes byte-identically, which is what
  // lets batched and per-query ingest produce the same checkpoints.
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    std::vector<std::pair<Timestamp, double>> records;
    for (int i = 0; i < 300; ++i) {
      // Clustered bursts with occasional long gaps: exercises gap-fill,
      // prepend, and run-bridging paths.
      Timestamp base = rng.UniformInt(0, 9) < 3
                           ? rng.UniformInt(0, 20 * kSecondsPerDay)
                           : records.empty() ? 0 : records.back().first;
      Timestamp ts = base + rng.UniformInt(0, 30 * kSecondsPerMinute);
      records.emplace_back(ts, PickCount(rng));
    }
    std::string want;
    for (int perm = 0; perm < 5; ++perm) {
      // Deterministic Fisher-Yates from the suite's own Rng.
      for (size_t i = records.size() - 1; i > 0; --i) {
        size_t j = rng.UniformInt(0, i);
        std::swap(records[i], records[j]);
      }
      ArrivalHistory history;
      for (const auto& [ts, count] : records) history.Record(ts, count);
      std::string encoded = Encoded(history);
      if (perm == 0) {
        want = encoded;
      } else {
        ASSERT_EQ(encoded, want) << "permutation " << perm;
      }
    }
  }
}

// --- dense v1 snapshot compatibility ---------------------------------------

void WriteV1Series(std::ostream& out, Timestamp start, int64_t interval,
                   const std::vector<double>& values) {
  out << start << ' ' << interval << ' ' << values.size() << '\n';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ' ';
    out << values[i];
  }
  out << '\n';
}

TEST(HistoryCompat, LoadsDenseV1Snapshot) {
  // A v1 checkpoint constructed byte-by-byte in the old dense format:
  // explicit-zero minute and hour vectors. Loading must reproduce the same
  // windows the dense pipeline served.
  const std::string text = "SELECT stop_name FROM stops WHERE stop_id = $1";
  std::ostringstream snap;
  snap.precision(17);
  snap << "qb5000-snapshot 1\n";
  snap << "templates 1\n";
  snap << "template 7\n";
  snap << text.size() << '\n' << text << '\n';
  snap << text.size() << '\n' << text << '\n';
  snap << "0 60 11100 23\n";
  snap << "tables 1\n";
  snap << "5\nstops\n";
  snap << "history 23 11100\n";
  WriteV1Series(snap, 10800, kSecondsPerMinute, {1, 0, 2, 0, 0, 3});
  WriteV1Series(snap, 0, kSecondsPerHour, {10, 0, 7});
  snap << "params 8 0 0\n";
  snap << "end\n";

  std::istringstream in(snap.str());
  auto pre = Snapshot::Load(in, PreProcessor::Options());
  ASSERT_TRUE(pre.ok()) << pre.status().ToString();
  const auto* info = pre->GetTemplate(7);
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->history.Total(), 23.0);
  ASSERT_EQ(info->history.last_arrival(), 11100);

  auto series = info->history.Series(kSecondsPerMinute, 0, 10800 + 360);
  ASSERT_TRUE(series.ok());
  for (size_t i = 0; i < series->size(); ++i) {
    Timestamp t = series->TimeAt(i);
    double want = 0.0;
    if (t < 3600) {
      want = 10.0 / 60.0;  // hour 0 spread over its minutes
    } else if (t >= 7200 && t < 10800) {
      want = 7.0 / 60.0;  // hour 2
    } else if (t == 10800) {
      want = 1.0;
    } else if (t == 10920) {
      want = 2.0;
    } else if (t == 11100) {
      want = 3.0;
    }
    ASSERT_EQ(series->values()[i], want) << "minute bucket at " << t;
  }

  // Saving re-emits v2; the migrated state must serve identical windows.
  std::stringstream resaved;
  ASSERT_TRUE(Snapshot::Save(*pre, resaved).ok());
  auto reloaded = Snapshot::Load(resaved, PreProcessor::Options());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const auto* migrated = reloaded->GetTemplate(7);
  ASSERT_NE(migrated, nullptr);
  auto again = migrated->history.Series(kSecondsPerMinute, 0, 10800 + 360);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), series->size());
  for (size_t i = 0; i < series->size(); ++i) {
    ASSERT_EQ(again->values()[i], series->values()[i]);
  }
}

// --- late-arrival regression (TimeSeries backwards growth) ------------------

TEST(HistoryLateArrival, BackwardsAddsStayAmortized) {
  // Worst-case late-arrival pattern: every Add lands one bucket before the
  // current front. The front-slack scheme makes this amortized O(1) per
  // bucket; the pre-slack implementation was O(n) per Add (O(n^2) total)
  // and this test was unusably slow.
  constexpr int kBuckets = 100000;
  Timestamp top = static_cast<Timestamp>(kBuckets) * kSecondsPerMinute;
  TimeSeries series(top, kSecondsPerMinute);
  for (int i = 0; i <= kBuckets; ++i) {
    series.Add(top - static_cast<Timestamp>(i) * kSecondsPerMinute, 1.0);
  }
  ASSERT_EQ(series.size(), static_cast<size_t>(kBuckets) + 1);
  ASSERT_EQ(series.start(), 0);
  ASSERT_EQ(series.Total(), static_cast<double>(kBuckets) + 1.0);
  for (size_t i = 0; i < series.size(); i += 997) {
    ASSERT_EQ(series.values()[i], 1.0) << "bucket " << i;
  }
  // Geometric regrowth keeps capacity within a small factor of the live
  // region (front slack included).
  EXPECT_LT(series.HeapBytes(), 8u * (kBuckets + 1) * sizeof(double));
}

TEST(HistoryLateArrival, InterleavedFrontAndBackGrowth) {
  Rng rng(42);
  TimeSeries series(1000 * kSecondsPerMinute, kSecondsPerMinute);
  TimeSeries reference(1000 * kSecondsPerMinute, kSecondsPerMinute);
  Timestamp low = 1000 * kSecondsPerMinute;
  Timestamp high = low;
  for (int i = 0; i < 5000; ++i) {
    Timestamp ts;
    if (rng.UniformInt(0, 1) == 0) {
      low -= rng.UniformInt(0, 3) * kSecondsPerMinute;
      ts = low;
    } else {
      high += rng.UniformInt(0, 3) * kSecondsPerMinute;
      ts = high;
    }
    series.Add(ts, 1.0);
    reference.Add(ts, 1.0);
  }
  ASSERT_EQ(series.start(), low);
  ASSERT_EQ(series.Total(), 5000.0);
  for (Timestamp t = low; t < high + kSecondsPerMinute;
       t += kSecondsPerMinute) {
    ASSERT_EQ(series.ValueAt(t), reference.ValueAt(t));
  }
}

}  // namespace
}  // namespace qb5000

#include <sstream>

#include <gtest/gtest.h>

#include "common/io.h"
#include "preprocessor/snapshot.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

PreProcessor MakePopulated() {
  PreProcessor pre;
  auto workload = MakeBusTracker({.seed = 2, .volume_scale = 0.3});
  EXPECT_TRUE(workload
                  .FeedAggregated(pre, 0, 3 * kSecondsPerDay,
                                  10 * kSecondsPerMinute, 4)
                  .ok());
  // Add some raw ingests so parameter samples exist.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(pre.Ingest("SELECT stop_name FROM stops WHERE stop_id = " +
                               std::to_string(i),
                           2 * kSecondsPerDay + i * 60)
                    .ok());
  }
  // Exercise compaction so both recent and archive series are non-empty.
  pre.CompactBefore(10 * kSecondsPerDay);
  return pre;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  PreProcessor original = MakePopulated();
  std::stringstream buffer;
  ASSERT_TRUE(Snapshot::Save(original, buffer).ok());

  auto restored = Snapshot::Load(buffer, PreProcessor::Options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->num_templates(), original.num_templates());
  // Totals re-accumulate per-template on load: allow reordering drift.
  EXPECT_NEAR(restored->total_queries(), original.total_queries(),
              1e-6 * original.total_queries());
  for (auto type :
       {sql::StatementType::kSelect, sql::StatementType::kInsert,
        sql::StatementType::kUpdate, sql::StatementType::kDelete}) {
    EXPECT_NEAR(restored->QueriesOfType(type), original.QueriesOfType(type),
                1e-6 * original.QueriesOfType(type) + 1e-9);
  }
  for (TemplateId id : original.TemplateIds()) {
    const auto* a = original.GetTemplate(id);
    const auto* b = restored->GetTemplate(id);
    ASSERT_NE(b, nullptr) << "template " << id << " lost";
    EXPECT_EQ(b->fingerprint, a->fingerprint);
    EXPECT_EQ(b->text, a->text);
    EXPECT_EQ(b->type, a->type);
    EXPECT_EQ(b->tables, a->tables);
    EXPECT_EQ(b->first_seen, a->first_seen);
    EXPECT_EQ(b->last_seen, a->last_seen);
    EXPECT_DOUBLE_EQ(b->total_queries, a->total_queries);
    EXPECT_DOUBLE_EQ(b->history.Total(), a->history.Total());
    // Hourly views identical across the whole span.
    auto sa = a->history.Series(kSecondsPerHour, 0, 4 * kSecondsPerDay);
    auto sb = b->history.Series(kSecondsPerHour, 0, 4 * kSecondsPerDay);
    ASSERT_TRUE(sa.ok() && sb.ok());
    for (size_t i = 0; i < sa->size(); ++i) {
      EXPECT_DOUBLE_EQ(sb->values()[i], sa->values()[i]);
    }
    EXPECT_EQ(b->param_samples.seen(), a->param_samples.seen());
    ASSERT_EQ(b->param_samples.items().size(), a->param_samples.items().size());
    for (size_t i = 0; i < a->param_samples.items().size(); ++i) {
      const auto& ta = a->param_samples.items()[i];
      const auto& tb = b->param_samples.items()[i];
      ASSERT_EQ(tb.size(), ta.size());
      for (size_t j = 0; j < ta.size(); ++j) {
        EXPECT_EQ(tb[j].type, ta[j].type);
        EXPECT_EQ(tb[j].text, ta[j].text);
      }
    }
  }
}

TEST(SnapshotTest, RestoredPreProcessorKeepsIngesting) {
  PreProcessor original = MakePopulated();
  size_t templates_before = original.num_templates();
  std::stringstream buffer;
  ASSERT_TRUE(Snapshot::Save(original, buffer).ok());
  auto restored = Snapshot::Load(buffer, PreProcessor::Options());
  ASSERT_TRUE(restored.ok());

  // Known template: maps to the existing id, no new template.
  auto known = restored->Ingest("SELECT stop_name FROM stops WHERE stop_id = 7",
                                4 * kSecondsPerDay);
  ASSERT_TRUE(known.ok());
  EXPECT_EQ(restored->num_templates(), templates_before);
  // New template: gets a fresh id above all restored ones.
  auto fresh = restored->Ingest("SELECT 1 FROM brand_new WHERE z = 1",
                                4 * kSecondsPerDay);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(restored->num_templates(), templates_before + 1);
  for (TemplateId id : original.TemplateIds()) EXPECT_NE(*fresh, id);
}

TEST(SnapshotTest, FileRoundTrip) {
  PreProcessor original = MakePopulated();
  const char* path = "/tmp/qb5000_snapshot_test.qbss";
  ASSERT_TRUE(Snapshot::SaveToFile(original, path).ok());
  auto restored = Snapshot::LoadFromFile(path, PreProcessor::Options());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_templates(), original.num_templates());
}

TEST(SnapshotTest, RejectsGarbageAndMissingFiles) {
  std::stringstream bad("not a snapshot at all");
  EXPECT_FALSE(Snapshot::Load(bad, PreProcessor::Options()).ok());
  std::stringstream wrong_version("qb5000-snapshot 999\ntemplates 0\nend\n");
  EXPECT_FALSE(Snapshot::Load(wrong_version, PreProcessor::Options()).ok());
  std::stringstream truncated("qb5000-snapshot 1\ntemplates 3\n");
  EXPECT_FALSE(Snapshot::Load(truncated, PreProcessor::Options()).ok());
  EXPECT_FALSE(
      Snapshot::LoadFromFile("/nonexistent/path.qbss", PreProcessor::Options())
          .ok());
}

TEST(SnapshotTest, SaveToFileSurfacesDiskErrors) {
  PreProcessor pre = MakePopulated();
  // Unwritable destination: an error Status, not a silent success.
  Status st = Snapshot::SaveToFile(pre, "/nonexistent_qb5000_dir/sub/s.qbss");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);

  // Write failure mid-stream (disk full, I/O error): also surfaced.
  FaultInjectingEnv env(nullptr);
  env.InjectFault(FaultInjectingEnv::FaultKind::kCrash, 1);
  EXPECT_FALSE(
      Snapshot::SaveToFile(pre, "/tmp/qb5000_snapshot_err.qbss", &env).ok());
}

TEST(SnapshotTest, FailedSaveLeavesPreviousSnapshotIntact) {
  const char* path = "/tmp/qb5000_snapshot_atomic.qbss";
  PreProcessor original = MakePopulated();
  ASSERT_TRUE(Snapshot::SaveToFile(original, path).ok());

  // A second save that dies mid-write must not clobber the good file.
  PreProcessor other;
  ASSERT_TRUE(
      other.Ingest("SELECT x FROM only_one WHERE id = 1", kSecondsPerDay).ok());
  FaultInjectingEnv env(nullptr);
  env.InjectFault(FaultInjectingEnv::FaultKind::kTornWrite, 1);
  ASSERT_FALSE(Snapshot::SaveToFile(other, path, &env).ok());

  auto reloaded = Snapshot::LoadFromFile(path, PreProcessor::Options());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_templates(), original.num_templates());
  EXPECT_NEAR(reloaded->total_queries(), original.total_queries(),
              1e-6 * original.total_queries());
}

TEST(SnapshotTest, EmptyPreProcessorRoundTrips) {
  PreProcessor empty;
  std::stringstream buffer;
  ASSERT_TRUE(Snapshot::Save(empty, buffer).ok());
  auto restored = Snapshot::Load(buffer, PreProcessor::Options());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_templates(), 0u);
}

}  // namespace
}  // namespace qb5000

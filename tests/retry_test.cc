// Retry/backoff helpers (common/retry.h) and the Deadline primitive
// (common/deadline.h): both are deterministic by construction — the backoff
// schedule is a pure function of options and attempt index, and the sleep
// is injectable — so these tests assert exact schedules without waiting.
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/retry.h"
#include "common/status.h"

namespace qb5000 {
namespace {

TEST(RetryTest, BackoffScheduleIsGeometricAndCapped) {
  RetryOptions options;
  options.initial_backoff_seconds = 0.010;
  options.backoff_multiplier = 2.0;
  options.max_backoff_seconds = 0.100;
  EXPECT_DOUBLE_EQ(BackoffForAttempt(options, 0), 0.010);
  EXPECT_DOUBLE_EQ(BackoffForAttempt(options, 1), 0.020);
  EXPECT_DOUBLE_EQ(BackoffForAttempt(options, 2), 0.040);
  EXPECT_DOUBLE_EQ(BackoffForAttempt(options, 3), 0.080);
  EXPECT_DOUBLE_EQ(BackoffForAttempt(options, 4), 0.100);  // capped
  EXPECT_DOUBLE_EQ(BackoffForAttempt(options, 40), 0.100);  // no overflow
}

TEST(RetryTest, RetriesOverloadedUntilSuccessWithExactSchedule) {
  RetryOptions options;
  options.max_attempts = 5;
  options.initial_backoff_seconds = 0.010;
  options.backoff_multiplier = 2.0;
  options.max_backoff_seconds = 1.0;
  std::vector<double> slept;
  options.sleep = [&slept](double s) { slept.push_back(s); };

  int calls = 0;
  Status st = RetryWithBackoff(
      [&calls]() {
        ++calls;
        return calls < 3 ? Status::Overloaded("shed") : Status::Ok();
      },
      options);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(slept.size(), 2u);  // two failures -> two sleeps, none trailing
  EXPECT_DOUBLE_EQ(slept[0], 0.010);
  EXPECT_DOUBLE_EQ(slept[1], 0.020);
}

TEST(RetryTest, TerminalErrorReturnsImmediately) {
  RetryOptions options;
  std::vector<double> slept;
  options.sleep = [&slept](double s) { slept.push_back(s); };
  int calls = 0;
  Status st = RetryWithBackoff(
      [&calls]() {
        ++calls;
        return Status::InvalidArgument("not retryable");
      },
      options);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryTest, ExhaustedAttemptsReturnLastFailureWithoutTrailingSleep) {
  RetryOptions options;
  options.max_attempts = 3;
  std::vector<double> slept;
  options.sleep = [&slept](double s) { slept.push_back(s); };
  int calls = 0;
  Status st = RetryWithBackoff(
      [&calls]() {
        ++calls;
        return Status::Overloaded("still shedding");
      },
      options);
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept.size(), 2u);  // never sleeps after the final attempt
}

TEST(RetryTest, CustomRetryablePredicateWins) {
  RetryOptions options;
  options.max_attempts = 4;
  options.sleep = [](double) {};
  options.retryable = [](const Status& s) {
    return s.code() == StatusCode::kIOError;
  };
  int calls = 0;
  Status st = RetryWithBackoff(
      [&calls]() {
        ++calls;
        return calls < 2 ? Status::IOError("transient") : Status::Ok();
      },
      options);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 2);
  // And kOverloaded is now terminal under the custom predicate.
  calls = 0;
  st = RetryWithBackoff(
      [&calls]() {
        ++calls;
        return Status::Overloaded("shed");
      },
      options);
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ResultVariantReturnsValueAfterRetries) {
  RetryOptions options;
  options.max_attempts = 4;
  std::vector<double> slept;
  options.sleep = [&slept](double s) { slept.push_back(s); };
  int calls = 0;
  Result<int> r = RetryWithBackoff<int>(
      [&calls]() -> Result<int> {
        ++calls;
        if (calls < 3) return Status::Overloaded("shed");
        return 42;
      },
      options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(slept.size(), 2u);
}

TEST(RetryTest, SingleAttemptMeansNoRetryLoop) {
  RetryOptions options;
  options.max_attempts = 1;
  std::vector<double> slept;
  options.sleep = [&slept](double s) { slept.push_back(s); };
  int calls = 0;
  Status st = RetryWithBackoff(
      [&calls]() {
        ++calls;
        return Status::Overloaded("shed");
      },
      options);
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(DeadlineTest, DefaultIsUnbounded) {
  Deadline unbounded;
  EXPECT_FALSE(unbounded.bounded());
  EXPECT_FALSE(unbounded.Exceeded());
  EXPECT_FALSE(DeadlineExceeded(&unbounded));
  EXPECT_FALSE(DeadlineExceeded(nullptr));  // nullptr = unbounded by contract
}

TEST(DeadlineTest, ZeroBudgetIsImmediatelyExceeded) {
  Deadline spent(0.0);
  EXPECT_TRUE(spent.bounded());
  EXPECT_TRUE(spent.Exceeded());
  EXPECT_TRUE(DeadlineExceeded(&spent));
  EXPECT_LE(spent.remaining_seconds(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetIsNotExceededYet) {
  Deadline generous(3600.0);
  EXPECT_TRUE(generous.bounded());
  EXPECT_FALSE(generous.Exceeded());
  EXPECT_GT(generous.remaining_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(generous.budget_seconds(), 3600.0);
}

}  // namespace
}  // namespace qb5000

// The observability core (common/metrics.h): instrument semantics, the
// log-scale histogram's bucket math, registry registration and export
// stability, checkpoint round-trips — and the lock-cheap concurrency
// contract: writers on ThreadPool workers never lose an update and never
// tear an export, verified with exact final counts (run under TSan in CI).
#include "common/metrics.h"

#include <atomic>
#include <cmath>

#include "common/finite.h"
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/qb5000.h"
#include "preprocessor/preprocessor.h"

namespace qb5000 {
namespace {

TEST(Metrics, CounterAddsAndReads) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.events_total");
  EXPECT_EQ(c->value(), 0u);
  c->Add();
  c->Add(41);
  // In a QB5000_METRICS=OFF build Add() is a compiled-out no-op.
  EXPECT_EQ(c->value(), kMetricsEnabled ? 42u : 0u);
}

TEST(Metrics, GaugeHoldsLastWrite) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.level");
  EXPECT_EQ(g->value(), 0.0);
  g->Set(0.25);
  g->Set(-3.5);
  EXPECT_EQ(g->value(), kMetricsEnabled ? -3.5 : 0.0);
  // Restore() is the checkpoint path and works even with metrics off.
  g->Restore(1.5);
  EXPECT_EQ(g->value(), 1.5);
}

TEST(Metrics, RegistrationReturnsStableDistinctPointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.a");
  Counter* b = registry.GetCounter("test.b");
  EXPECT_NE(a, b);
  // Same name: same instrument, across many registrations (deque storage
  // must not invalidate earlier pointers as the registry grows).
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("test.filler_" + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("test.a"), a);
  // Counter / gauge / histogram namespaces are independent.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("test.a")),
            static_cast<void*>(a));
}

TEST(Metrics, HistogramBucketMath) {
  // Bucket i's inclusive upper bound is 1e-9 * 2^i; the last bucket is
  // open-ended. This layout is a stability contract (DESIGN.md §10).
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(0), 1e-9);
  EXPECT_DOUBLE_EQ(Histogram::UpperBound(10), 1e-9 * 1024);
  EXPECT_FALSE(
      qb5000::IsFinite(Histogram::UpperBound(Histogram::kNumBuckets - 1)));

  EXPECT_EQ(Histogram::BucketIndex(1e-9), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.5e-9), 1u);
  // Exact bounds land in their own bucket, one past goes up.
  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    double bound = Histogram::UpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(bound), i) << bound;
    EXPECT_EQ(Histogram::BucketIndex(std::nextafter(
                  bound, std::numeric_limits<double>::infinity())),
              i + 1)
        << bound;
  }
  // Degenerate observations never index out of range.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0u);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<double>::infinity()),
            Histogram::kNumBuckets - 1);
}

TEST(Metrics, HistogramObserveAccumulates) {
  if (!kMetricsEnabled) GTEST_SKIP() << "instruments are no-ops";
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.latency_seconds");
  h->Observe(1e-9);
  h->Observe(0.5);
  h->Observe(0.5);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 1.0 + 1e-9);
  EXPECT_EQ(h->bucket(0), 1u);
  EXPECT_EQ(h->bucket(Histogram::BucketIndex(0.5)), 2u);
}

TEST(Metrics, ScopedTimerObservesOnceAndNullIsInert) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.scope_seconds");
  { ScopedTimer timer(h); }
  { ScopedTimer timer(nullptr); }
  if (kMetricsEnabled) {
    EXPECT_EQ(h->count(), 1u);
    EXPECT_GE(h->sum(), 0.0);
  } else {
    EXPECT_EQ(h->count(), 0u);
  }
}

TEST(Metrics, StopwatchMeasuresEvenWhenMetricsDisabled) {
  // Stopwatch is the sanctioned ad-hoc timing API (qb_lint raw-chrono-timing
  // bans steady_clock::now() elsewhere); it must work in every build.
  Stopwatch sw;
  double first = sw.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(sw.ElapsedSeconds(), first);
  sw.Restart();
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

TEST(Metrics, ExportTextIsSortedAndRegistrationOrderIndependent) {
  if (!kMetricsEnabled) GTEST_SKIP() << "instruments are no-ops";
  MetricsRegistry forward;
  forward.GetCounter("a.hits_total")->Add(3);
  forward.GetGauge("b.level")->Set(1.5);
  forward.GetHistogram("c.lat_seconds")->Observe(1e-9);

  MetricsRegistry reverse;
  reverse.GetHistogram("c.lat_seconds")->Observe(1e-9);
  reverse.GetGauge("b.level")->Set(1.5);
  reverse.GetCounter("a.hits_total")->Add(3);

  std::string text = forward.ExportText();
  EXPECT_EQ(text, reverse.ExportText());
  EXPECT_EQ(text,
            "counter a.hits_total 3\n"
            "gauge b.level 1.5\n"
            "histogram c.lat_seconds count=1 sum=1e-09 buckets=0:1\n");

  MetricsRegistry::ExportOptions counters_only;
  counters_only.counters_only = true;
  EXPECT_EQ(forward.ExportText(counters_only), "counter a.hits_total 3\n");
}

TEST(Metrics, ExportJsonListsAllInstrumentKinds) {
  if (!kMetricsEnabled) GTEST_SKIP() << "instruments are no-ops";
  MetricsRegistry registry;
  registry.GetCounter("x.n_total")->Add(7);
  registry.GetGauge("x.ratio")->Set(0.5);
  registry.GetHistogram("x.t_seconds")->Observe(1e-9);
  EXPECT_EQ(registry.ExportJson(),
            "{\"counters\":{\"x.n_total\":7},"
            "\"gauges\":{\"x.ratio\":0.5},"
            "\"histograms\":{\"x.t_seconds\":"
            "{\"count\":1,\"sum\":1e-09,\"buckets\":{\"0\":1}}}}");
}

TEST(Metrics, SerializeRestoreRoundTripsCountersAndGauges) {
  if (!kMetricsEnabled) GTEST_SKIP() << "instruments are no-ops";
  MetricsRegistry source;
  source.GetCounter("p.q_total")->Add(123456789);
  source.GetGauge("p.ratio")->Set(0.123456789012345678);  // needs %.17g
  source.GetHistogram("p.t_seconds")->Observe(1.0);  // must NOT persist

  MetricsRegistry target;
  Status st = target.RestoreState(source.SerializeState());
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(target.GetCounter("p.q_total")->value(), 123456789u);
  EXPECT_EQ(target.GetGauge("p.ratio")->value(),
            source.GetGauge("p.ratio")->value());
  EXPECT_EQ(target.GetHistogram("p.t_seconds")->count(), 0u);
}

TEST(Metrics, RestoreStateRejectsGarbageWithoutPartialApply) {
  MetricsRegistry registry;
  registry.GetCounter("keep.me_total")->Add(5);
  EXPECT_FALSE(registry.RestoreState("not-metrics").ok());
  EXPECT_FALSE(registry.RestoreState("metrics-v1\ncounters 2\na 1\n").ok());
  // The failed restores parsed fully before applying: nothing changed.
  EXPECT_EQ(registry.GetCounter("keep.me_total")->value(),
            kMetricsEnabled ? 5u : 0u);
}

TEST(Metrics, ResetZeroesEverything) {
  if (!kMetricsEnabled) GTEST_SKIP() << "instruments are no-ops";
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("r.n_total");
  Gauge* g = registry.GetGauge("r.level");
  Histogram* h = registry.GetHistogram("r.t_seconds");
  c->Add(9);
  g->Set(2.0);
  h->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0.0);
  EXPECT_EQ(h->bucket(Histogram::BucketIndex(0.5)), 0u);
}

/// Restores the previous global thread count when the test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(GetThreadCount()) {}
  ~ThreadCountGuard() { SetThreadCount(saved_); }

 private:
  size_t saved_;
};

// The concurrency contract, with exact accounting: writers hammer shared
// instruments from ThreadPool workers while another lane exports and
// registers new instruments mid-flight. Relaxed atomics may reorder but
// must not lose updates; the registry's shared_mutex must keep export and
// registration safe against each other. CI runs this under TSan.
TEST(Metrics, ConcurrentHammerLosesNoUpdates) {
  if (!kMetricsEnabled) GTEST_SKIP() << "instruments are no-ops";
  ThreadCountGuard guard;
  constexpr size_t kWriters = 8;
  constexpr uint64_t kOpsPerWriter = 20000;

  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("hammer.hits_total");
  Histogram* lat = registry.GetHistogram("hammer.lat_seconds");
  Gauge* level = registry.GetGauge("hammer.level");

  std::atomic<size_t> writers_done{0};  // lint:raw-atomic-ok (test scaffolding)
  ThreadPool pool(kWriters + 1);
  pool.Run(kWriters + 1, [&](size_t task) {
    if (task == kWriters) {
      // Reader lane: export and register new names until every writer
      // finished, racing the hot-path mutations.
      uint64_t exports = 0;
      while (writers_done.load(std::memory_order_acquire) < kWriters) {
        std::string text = registry.ExportText();
        EXPECT_NE(text.find("counter hammer.hits_total "), std::string::npos);
        registry.GetCounter("hammer.reader_" + std::to_string(exports % 32));
        ++exports;
      }
      EXPECT_GT(exports, 0u);
      return;
    }
    for (uint64_t i = 0; i < kOpsPerWriter; ++i) {
      hits->Add();
      lat->Observe(1e-6);
      level->Set(static_cast<double>(i));
    }
    writers_done.fetch_add(1, std::memory_order_release);
  });

  // Exact final counts: every increment landed exactly once.
  EXPECT_EQ(hits->value(), kWriters * kOpsPerWriter);
  EXPECT_EQ(lat->count(), kWriters * kOpsPerWriter);
  EXPECT_EQ(lat->bucket(Histogram::BucketIndex(1e-6)),
            kWriters * kOpsPerWriter);
  // sum accumulates 160k rounded additions; allow accumulation error but
  // not a lost update (one miss would be off by a full 1e-6).
  EXPECT_NEAR(lat->sum(),
              1e-6 * static_cast<double>(kWriters) *
                  static_cast<double>(kOpsPerWriter),
              1e-7);
  EXPECT_EQ(level->value(), static_cast<double>(kOpsPerWriter - 1));
}

// Racing first-registrations of the same name must agree on one instrument.
TEST(Metrics, ConcurrentRegistrationConverges) {
  ThreadCountGuard guard;
  MetricsRegistry registry;
  constexpr size_t kLanes = 8;
  std::array<Counter*, kLanes> seen{};
  ThreadPool pool(kLanes);
  pool.Run(kLanes, [&](size_t lane) {
    for (int name = 0; name < 64; ++name) {
      Counter* c = registry.GetCounter("race." + std::to_string(name));
      if (name == 0) seen[lane] = c;
      c->Add();
    }
  });
  for (size_t lane = 1; lane < kLanes; ++lane) {
    EXPECT_EQ(seen[lane], seen[0]);
  }
  if (kMetricsEnabled) {
    EXPECT_EQ(registry.GetCounter("race.0")->value(), kLanes);
  }
}

// ---------------------------------------------------------------------------
// Ingest instrumentation (DESIGN.md §11): hit/miss counters are exact, and
// the 1-in-16 latency sampling ticks per Ingest call — not per metric value
// — so each resolution class lands in its own histogram at the right rate.
// ---------------------------------------------------------------------------

TEST(Metrics, IngestHitMissCountersAreExact) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry registry;
  PreProcessor::Options options;
  options.metrics = &registry;
  PreProcessor pre(options);

  // 1 miss (first sight) + 32 hits of the same template; literal values
  // vary so the raw strings differ while the normalized key does not.
  ASSERT_TRUE(pre.Ingest("SELECT * FROM t WHERE x = 0", 0).ok());
  for (int i = 1; i <= 32; ++i) {
    std::string sql = "SELECT * FROM t WHERE x = " + std::to_string(i);
    ASSERT_TRUE(pre.Ingest(sql, i).ok());
  }
  EXPECT_EQ(registry.GetCounter("preprocessor.cache_misses_total")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("preprocessor.cache_hits_total")->value(), 32u);
  EXPECT_EQ(registry.GetCounter("preprocessor.ingests_total")->value(), 33u);
  // One reject: normalization fails, neither hit nor miss moves.
  EXPECT_FALSE(pre.Ingest("SELECT 'oops", 40).ok());
  EXPECT_EQ(registry.GetCounter("preprocessor.parse_failures_total")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("preprocessor.cache_misses_total")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("preprocessor.cache_hits_total")->value(), 32u);

  // Sampling: calls 0, 16, 32 were measured (ticker & 15 == 0). Call 0 was
  // the miss; calls 16 and 32 were hits. The reject at call 33 ticked the
  // ticker but observed nothing.
  EXPECT_EQ(registry.GetHistogram("preprocessor.ingest_seconds.miss")->count(), 1u);
  EXPECT_EQ(registry.GetHistogram("preprocessor.ingest_seconds.hit")->count(), 2u);
}

TEST(Metrics, IngestMissSamplingCoversAllMissWorkloads) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry registry;
  PreProcessor::Options options;
  options.metrics = &registry;
  PreProcessor pre(options);

  // 33 distinct templates: every ingest is a miss; ticks 0, 16, 32 sampled.
  for (int i = 0; i < 33; ++i) {
    std::string sql = "SELECT * FROM t" + std::to_string(i) + " WHERE x = 1";
    ASSERT_TRUE(pre.Ingest(sql, i).ok());
  }
  EXPECT_EQ(registry.GetCounter("preprocessor.cache_misses_total")->value(), 33u);
  EXPECT_EQ(registry.GetCounter("preprocessor.cache_hits_total")->value(), 0u);
  EXPECT_EQ(registry.GetHistogram("preprocessor.ingest_seconds.miss")->count(), 3u);
  EXPECT_EQ(registry.GetHistogram("preprocessor.ingest_seconds.hit")->count(), 0u);
}

// Service-mode instrumentation, exact counts end to end: the queue-depth
// gauge tracks the ring, every rejected enqueue is one stall, every working
// drain round is one bg round, and every model publication is one epoch.
// Manual mode (background=false) makes each number deterministic.
TEST(Metrics, ServiceQueueAndEpochCountsAreExact) {
  if (!kMetricsEnabled) GTEST_SKIP() << "instruments are no-ops";
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;  // closed form: fast, exact
  config.horizons = {kSecondsPerHour};
  QueryBot5000 bot(config);
  // auto_maintenance off: the drain round is pure ingest, so its metric
  // footprint is exactly one bg round — maintenance is forced explicitly
  // below where the epoch is asserted.
  QueryBot5000::ServiceOptions sopts;
  sopts.queue_capacity = 4;
  sopts.background = false;
  sopts.auto_maintenance = false;
  ASSERT_TRUE(bot.StartService(sopts).ok());
  Gauge* depth = bot.Metrics().GetGauge("core.queue_depth");
  Counter* stalls = bot.Metrics().GetCounter("core.queue_enqueue_stalls_total");
  Counter* rounds = bot.Metrics().GetCounter("core.bg_rounds_total");
  Gauge* epoch_gauge = bot.Metrics().GetGauge("core.model_epoch");

  for (int i = 0; i < 4; ++i) {
    std::vector<QueryArrival> one{
        {"SELECT x FROM t WHERE id = 1", Timestamp(i) * kSecondsPerHour, 1.0}};
    ASSERT_TRUE(bot.EnqueueBatch(one).ok()) << "enqueue " << i;
    EXPECT_EQ(depth->value(), static_cast<double>(i + 1));
  }
  // Ring full (capacity 4): the fifth enqueue is exactly one stall.
  std::vector<QueryArrival> fifth{
      {"SELECT x FROM t WHERE id = 1", 5 * kSecondsPerHour, 1.0}};
  EXPECT_EQ(bot.EnqueueBatch(fifth).code(), StatusCode::kOverloaded);
  EXPECT_EQ(stalls->value(), 1u);
  EXPECT_EQ(depth->value(), 4.0);
  EXPECT_EQ(rounds->value(), 0u);

  // One drain applies all four chunks in one working round.
  bot.DrainForTest();
  EXPECT_EQ(depth->value(), 0.0);
  EXPECT_EQ(rounds->value(), 1u);
  EXPECT_EQ(stalls->value(), 1u) << "drain must not count as a stall";

  // No maintenance has run: epoch is still zero.
  EXPECT_EQ(bot.model_epoch(), 0u);
  EXPECT_EQ(epoch_gauge->value(), 0.0);
  // One forced maintenance pass = exactly one model publication. The train
  // status does not matter: a failed train still publishes (the rollback
  // bookkeeping is part of the swapped snapshot).
  (void)bot.RunMaintenance(4 * kSecondsPerHour, /*force=*/true);
  EXPECT_EQ(bot.model_epoch(), 1u);
  EXPECT_EQ(epoch_gauge->value(), 1.0);
  ASSERT_TRUE(bot.StopService().ok());
}

TEST(Metrics, CacheDisabledCountsEverythingAsMiss) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics disabled at compile time";
  MetricsRegistry registry;
  PreProcessor::Options options;
  options.metrics = &registry;
  options.template_cache_capacity = 0;
  PreProcessor pre(options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pre.Ingest("SELECT * FROM t WHERE x = 1", i).ok());
  }
  EXPECT_EQ(registry.GetCounter("preprocessor.cache_misses_total")->value(), 5u);
  EXPECT_EQ(registry.GetCounter("preprocessor.cache_hits_total")->value(), 0u);
  EXPECT_EQ(pre.cache_size(), 0u);
}

}  // namespace
}  // namespace qb5000

// Robustness and failure-injection tests: the pipeline must degrade
// gracefully — never crash, never corrupt state — under malformed SQL,
// hostile token streams, out-of-order timestamps, and starvation.
#include <cmath>

#include "common/finite.h"

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/rng.h"
#include "core/qb5000.h"
#include "dbms/database.h"
#include "preprocessor/templatizer.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace qb5000 {
namespace {

// ---------------------------------------------------------------------------
// Deterministic parser fuzzing: random byte soup and mutated valid SQL.
// The contract: Parse() returns ok or an error Status — it never crashes,
// and whatever parses must print and reparse to the same text.
// ---------------------------------------------------------------------------

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomByteSoupNeverCrashes) {
  Rng rng(GetParam());
  const char kAlphabet[] =
      " \t\nABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
      "()*,.;=<>!'\"`%_+-/?$|&#@[]{}\\";
  for (int trial = 0; trial < 500; ++trial) {
    size_t length = static_cast<size_t>(rng.UniformInt(0, 120));
    std::string soup;
    for (size_t i = 0; i < length; ++i) {
      soup += kAlphabet[rng.UniformInt(0, sizeof(kAlphabet) - 2)];
    }
    auto result = sql::Parse(soup);  // must not crash or hang
    if (result.ok()) {
      std::string printed = sql::Print(*result);
      auto reparsed = sql::Parse(printed);
      ASSERT_TRUE(reparsed.ok()) << "printed form must reparse: " << printed;
      EXPECT_EQ(sql::Print(*reparsed), printed);
    }
  }
}

TEST_P(ParserFuzz, MutatedValidSqlNeverCrashes) {
  Rng rng(GetParam() + 1000);
  const std::string kSeeds[] = {
      "SELECT a, b FROM t WHERE x = 1 AND y IN (2, 3) ORDER BY a DESC LIMIT 5",
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
      "UPDATE t SET a = 1, b = 'z' WHERE c BETWEEN 2 AND 9",
      "DELETE FROM t WHERE a LIKE 'p%' OR b IS NOT NULL",
      "SELECT COUNT(*), AVG(v) FROM t JOIN u ON t.id = u.id GROUP BY g "
      "HAVING COUNT(*) > 2",
  };
  for (int trial = 0; trial < 400; ++trial) {
    std::string sql = kSeeds[rng.UniformInt(0, 4)];
    int mutations = static_cast<int>(rng.UniformInt(1, 6));
    for (int m = 0; m < mutations && !sql.empty(); ++m) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(sql.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          sql.erase(pos, 1);
          break;
        case 1:
          sql.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
          break;
        default:
          sql[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
      }
    }
    Arena arena;
    auto tokens = sql::Tokenize(sql, &arena);  // must not crash
    auto result = sql::Parse(sql);     // must not crash
    (void)tokens;
    (void)result;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(101, 202, 303));

// ---------------------------------------------------------------------------
// Templatizer over hostile input: total function — every tokenizable string
// produces a template (parse fallback), every non-tokenizable one an error.
// ---------------------------------------------------------------------------

TEST(TemplatizerRobustness, HostileInputsNeverCrash) {
  const std::string cases[] = {
      "",
      ";;;",
      "SELECT",
      "SELECT FROM WHERE",
      "EXPLAIN ANALYZE SELECT 1",
      "BEGIN",
      "COMMIT",
      "SET search_path = foo",
      "SELECT * FROM t WHERE a = 'unterminated",
      "SELECT /* nested /* comment */ 1",
      std::string(10000, 'x'),
      "SELECT '" + std::string(5000, 'y') + "' FROM t",
  };
  for (const auto& sql : cases) {
    auto result = Templatize(sql);  // ok-or-error, never crash
    if (result.ok()) {
      EXPECT_FALSE(result->fingerprint.empty()) << sql.substr(0, 40);
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline failure injection.
// ---------------------------------------------------------------------------

TEST(PipelineRobustness, MalformedSqlBurstDoesNotPoisonState) {
  QueryBot5000 bot;
  // Interleave good queries with a burst of garbage.
  for (int i = 0; i < 200; ++i) {
    Timestamp ts = i * kSecondsPerMinute;
    ASSERT_TRUE(
        bot.Ingest("SELECT a FROM t WHERE id = " + std::to_string(i), ts).ok());
    EXPECT_FALSE(bot.Ingest("SELECT 'broken", ts).ok());
    EXPECT_FALSE(bot.Ingest("", ts).ok());
  }
  EXPECT_EQ(bot.preprocessor().num_templates(), 1u);
  EXPECT_DOUBLE_EQ(bot.preprocessor().total_queries(), 200.0);
}

TEST(PipelineRobustness, OutOfOrderTimestampsAreAbsorbed) {
  PreProcessor pre;
  Rng rng(7);
  auto tmpl = Templatize("SELECT a FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  double total = 0;
  std::vector<Timestamp> times;
  for (int i = 0; i < 1000; ++i) {
    times.push_back(rng.UniformInt(0, 3 * kSecondsPerDay));
  }
  for (Timestamp ts : times) {
    pre.IngestTemplatized(*tmpl, ts, 1.0);
    total += 1.0;
  }
  // Compact mid-stream, then keep feeding earlier timestamps.
  pre.CompactBefore(10 * kSecondsPerDay);
  for (Timestamp ts : times) {
    pre.IngestTemplatized(*tmpl, ts / 2, 1.0);
    total += 1.0;
  }
  const auto* info = pre.GetTemplate(pre.TemplateIds()[0]);
  ASSERT_NE(info, nullptr);
  EXPECT_NEAR(info->history.Total(), total, 1e-9);
  auto series = info->history.Series(kSecondsPerHour, 0, 3 * kSecondsPerDay);
  ASSERT_TRUE(series.ok());
  EXPECT_NEAR(series->Total(), total, 1e-9);
}

TEST(PipelineRobustness, BackwardsClockDoesNotCorruptStateOrArmTimer) {
  // NTP step / VM migration: the ingest clock jumps a day into the past.
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  QueryBot5000 bot(config);  // maintenance period: one day
  auto tmpl = Templatize("SELECT a FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  for (int h = 0; h < 3 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    bot.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour,
                          100 * (1.5 + std::sin(2 * M_PI * t)));
  }
  ASSERT_TRUE(bot.RunMaintenance(3 * kSecondsPerDay, true).ok());
  ASSERT_EQ(bot.last_maintenance(), 3 * kSecondsPerDay);

  // Ingest with a regressed timestamp: histories must absorb it, totals
  // must stay exact, last_seen must not move backwards.
  const auto* info = bot.preprocessor().GetTemplate(1);
  ASSERT_NE(info, nullptr);
  double total_before = info->history.Total();
  Timestamp last_seen_before = info->last_seen;
  bot.IngestTemplatized(*tmpl, 2 * kSecondsPerDay, 5.0);
  EXPECT_NEAR(info->history.Total(), total_before + 5.0, 1e-9);
  EXPECT_EQ(info->last_seen, last_seen_before);

  // Maintenance with the regressed clock must not arm the timer into the
  // future: it re-anchors to the regressed time...
  ASSERT_TRUE(bot.RunMaintenance(2 * kSecondsPerDay).ok());
  EXPECT_LE(bot.last_maintenance(), 2 * kSecondsPerDay);
  // ...so one period after the regressed time, maintenance is due again
  // (without the fix it would stay silent until 4d).
  ASSERT_TRUE(bot.RunMaintenance(3 * kSecondsPerDay).ok());
  EXPECT_EQ(bot.last_maintenance(), 3 * kSecondsPerDay);
  EXPECT_TRUE(bot.Forecast(3 * kSecondsPerDay, kSecondsPerHour).ok());
}

TEST(PipelineRobustness, ForwardClockJumpDoesNotMassEvictOrCompact) {
  // The mirror of the backwards-clock test above: an NTP step / resumed VM
  // jumps the clock 90 days *forward*. The apparent gap since the last
  // maintenance pass is fictitious — anchoring housekeeping at the stepped
  // clock would put every live template past the 30-day eviction threshold
  // and compact still-fresh history. The clamp (Config::
  // max_clock_step_seconds) caps the housekeeping anchor at the tolerated
  // step past the last pass.
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  QueryBot5000 bot(config);
  auto tmpl = Templatize("SELECT a FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  double total = 0.0;
  for (int h = 0; h < 3 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    double rate = 100 * (1.5 + std::sin(2 * M_PI * t));
    bot.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour,
                          rate);
    total += rate;
  }
  ASSERT_TRUE(bot.RunMaintenance(3 * kSecondsPerDay, true).ok());
  ASSERT_EQ(bot.preprocessor().num_templates(), 1u);

  // Maintenance at the stepped clock: the template survives (without the
  // clamp it would be 90 days idle and evicted) and its history is not
  // compacted away (totals stay exact).
  // Training at the stepped time may legitimately fail (the training window
  // is empty); the property under test is housekeeping, not the fit.
  Status jumped = bot.RunMaintenance(3 * kSecondsPerDay + 90 * kSecondsPerDay);
  (void)jumped;
  ASSERT_EQ(bot.preprocessor().num_templates(), 1u);
  const auto* info = bot.preprocessor().GetTemplate(1);
  ASSERT_NE(info, nullptr);
  EXPECT_NEAR(info->history.Total(), total, 1e-9);

  // The clamp bridges the pass that observes the fictitious gap; a *live*
  // template immediately sees post-step arrivals (the new time is the time),
  // so it stays fresh through every later pass. (Eviction of genuinely idle
  // templates is covered in preprocessor_test.cc / integration_test.cc.)
  bot.IngestTemplatized(*tmpl, 93 * kSecondsPerDay + kSecondsPerHour, 10.0);
  Status settled = bot.RunMaintenance(94 * kSecondsPerDay);
  (void)settled;
  EXPECT_EQ(bot.preprocessor().num_templates(), 1u);
}

TEST(PipelineRobustness, MaintenanceOnEmptyAndTinyStates) {
  QueryBot5000 bot;
  // Nothing ingested at all: maintenance is a no-op, not an error.
  EXPECT_TRUE(bot.RunMaintenance(kSecondsPerDay, true).ok());
  EXPECT_FALSE(bot.Forecast(kSecondsPerDay, kSecondsPerHour).ok());
  // A single query: still not enough to train, but must not corrupt state.
  ASSERT_TRUE(bot.Ingest("SELECT a FROM t WHERE id = 1", kSecondsPerDay).ok());
  Status st = bot.RunMaintenance(2 * kSecondsPerDay, true);
  // Either it trains (enough zero-padded history) or fails cleanly.
  if (!st.ok()) {
    EXPECT_FALSE(st.message().empty());
  }
  EXPECT_EQ(bot.preprocessor().num_templates(), 1u);
}

TEST(PipelineRobustness, ZeroVolumeGapThenResume) {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 7 * kSecondsPerDay;
  config.clusterer.feature.num_samples = 96;
  config.clusterer.feature.window_seconds = 5 * kSecondsPerDay;
  QueryBot5000 bot(config);
  auto tmpl = Templatize("SELECT a FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  // Three days of traffic, three days of silence, three more days.
  for (int h = 0; h < 9 * 24; ++h) {
    if (h >= 3 * 24 && h < 6 * 24) continue;  // outage
    double t = static_cast<double>(h) / 24.0;
    bot.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour,
                          100 * (1.5 + std::sin(2 * M_PI * t)));
  }
  ASSERT_TRUE(bot.RunMaintenance(9 * kSecondsPerDay, true).ok());
  auto forecast = bot.Forecast(9 * kSecondsPerDay, kSecondsPerHour);
  ASSERT_TRUE(forecast.ok());
  for (double v : forecast->queries_per_interval) {
    EXPECT_TRUE(qb5000::IsFinite(v));
    EXPECT_GE(v, 0.0);
  }
}

TEST(ExecutorRobustness, DeepPredicateNestingDoesNotOverflow) {
  dbms::Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"id", true, 100}}).ok());
  ASSERT_TRUE(db.GetTable("t")->Insert({int64_t{1}}).ok());
  std::string where = "id = 1";
  for (int i = 0; i < 200; ++i) {
    where = "(" + where + " OR id = " + std::to_string(i + 2) + ")";
  }
  auto result = db.Execute("SELECT id FROM t WHERE " + where);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_returned, 1u);
}

TEST(ExecutorRobustness, WidePredicatesAndBigInLists) {
  dbms::Database db;
  ASSERT_TRUE(db.CreateTable("t", {{"id", true, 1000}}).ok());
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(db.GetTable("t")->Insert({int64_t{i}}).ok());
  }
  ASSERT_TRUE(db.CreateIndex("t", "id").ok());
  std::string in_list = "SELECT id FROM t WHERE id IN (";
  for (int i = 0; i < 500; ++i) {
    if (i > 0) in_list += ", ";
    in_list += std::to_string(i * 3);  // every third value, many misses
  }
  in_list += ")";
  auto result = db.Execute(in_list);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_returned, 33u);  // 3,6,...,99
}

}  // namespace
}  // namespace qb5000

// Numerical property tests for the math kernels: reconstruction and
// consistency checks on random inputs, beyond the fixed-value unit tests.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/linalg.h"
#include "math/matrix.h"
#include "math/stats.h"

namespace qb5000 {
namespace {

Matrix RandomSymmetric(size_t n, Rng& rng) {
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.Gaussian(0, 1);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

class EigenProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenProperty, ReconstructsMatrixAndOrthonormalVectors) {
  size_t n = GetParam();
  Rng rng(n * 7 + 1);
  Matrix a = RandomSymmetric(n, rng);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  const Matrix& v = eig->eigenvectors;
  // V diag(L) V^T == A.
  Matrix vl(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) vl(i, j) = v(i, j) * eig->eigenvalues[j];
  }
  Matrix reconstructed = vl.MatMul(v.Transpose());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(reconstructed(i, j), a(i, j), 1e-8) << i << "," << j;
    }
  }
  // Columns orthonormal.
  for (size_t c1 = 0; c1 < n; ++c1) {
    for (size_t c2 = c1; c2 < n; ++c2) {
      double dot = 0;
      for (size_t i = 0; i < n; ++i) dot += v(i, c1) * v(i, c2);
      EXPECT_NEAR(dot, c1 == c2 ? 1.0 : 0.0, 1e-8);
    }
  }
  // Eigenvalues sorted descending.
  for (size_t i = 1; i < n; ++i) {
    EXPECT_GE(eig->eigenvalues[i - 1], eig->eigenvalues[i] - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values<size_t>(1, 2, 5, 12, 30));

class CholeskyProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskyProperty, SolvesRandomSpdSystems) {
  size_t n = GetParam();
  Rng rng(n * 13 + 2);
  // SPD via A = B^T B + eps I.
  Matrix b(n, n);
  for (auto& v : b.mutable_data()) v = rng.Gaussian(0, 1);
  Matrix a = b.Transpose().MatMul(b);
  for (size_t i = 0; i < n; ++i) a(i, i) += 0.5;
  Vector x_true(n);
  for (auto& v : x_true) v = rng.Gaussian(0, 2);
  Vector rhs = a.MatVec(x_true);
  auto x = CholeskySolve(a, rhs);
  ASSERT_TRUE(x.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values<size_t>(1, 3, 10, 40));

TEST(RidgeProperty, ShrinksTowardZeroAsLambdaGrows) {
  Rng rng(5);
  Matrix x(60, 4);
  Matrix y(60, 1);
  for (size_t i = 0; i < 60; ++i) {
    for (size_t j = 0; j < 4; ++j) x(i, j) = rng.Gaussian(0, 1);
    y(i, 0) = 2 * x(i, 0) - x(i, 2) + rng.Gaussian(0, 0.1);
  }
  double previous_norm = 1e300;
  for (double lambda : {1e-4, 1e-1, 10.0, 1e4}) {
    auto w = RidgeRegression(x, y, lambda);
    ASSERT_TRUE(w.ok());
    double norm = 0;
    for (size_t j = 0; j < 4; ++j) norm += (*w)(j, 0) * (*w)(j, 0);
    EXPECT_LT(norm, previous_norm + 1e-12);
    previous_norm = norm;
  }
}

TEST(QuantileProperty, MonotoneAndBounded) {
  Rng rng(6);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.Gaussian(10, 4));
  double lo = *std::min_element(v.begin(), v.end());
  double hi = *std::max_element(v.begin(), v.end());
  double previous = -1e300;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double value = Quantile(v, q);
    EXPECT_GE(value, lo - 1e-12);
    EXPECT_LE(value, hi + 1e-12);
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }
}

TEST(CosineProperty, InvariantToPositiveScaling) {
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    Vector a(16), b(16);
    for (auto& v : a) v = rng.Gaussian(0, 1);
    for (auto& v : b) v = rng.Gaussian(0, 1);
    double base = CosineSimilarity(a, b);
    double scale = rng.Uniform(0.01, 100.0);
    EXPECT_NEAR(CosineSimilarity(ScaleVec(a, scale), b), base, 1e-9);
    EXPECT_GE(base, -1.0 - 1e-12);
    EXPECT_LE(base, 1.0 + 1e-12);
  }
}

TEST(PcaProperty, ProjectionVarianceDecreasesByComponent) {
  Rng rng(9);
  Matrix data(200, 6);
  for (size_t i = 0; i < 200; ++i) {
    double t = static_cast<double>(i);
    data(i, 0) = 3.0 * std::sin(0.1 * t) + rng.Gaussian(0, 0.1);
    data(i, 1) = 2.0 * std::cos(0.1 * t) + rng.Gaussian(0, 0.1);
    for (size_t j = 2; j < 6; ++j) data(i, j) = rng.Gaussian(0, 0.2);
  }
  auto proj = PcaProject(data, 3);
  ASSERT_TRUE(proj.ok());
  double previous = 1e300;
  for (size_t c = 0; c < 3; ++c) {
    Vector col(200);
    for (size_t i = 0; i < 200; ++i) col[i] = (*proj)(i, c);
    double var = Variance(col);
    EXPECT_LE(var, previous + 1e-9);
    previous = var;
  }
}

}  // namespace
}  // namespace qb5000

// Property-based and parameterized tests: invariants that must hold for
// randomized inputs across the whole pipeline, from TimeSeries algebra to
// executor/scan equivalence.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "clusterer/kdtree.h"
#include "clusterer/online_clusterer.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "dbms/database.h"
#include "dbms/loader.h"
#include "forecaster/dataset.h"
#include "forecaster/neural.h"
#include "math/stats.h"
#include "preprocessor/templatizer.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

// ---------------------------------------------------------------------------
// TimeSeries algebra properties across random shapes.
// ---------------------------------------------------------------------------

class TimeSeriesProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimeSeriesProperty, AggregatePreservesTotal) {
  Rng rng(GetParam());
  TimeSeries ts(0, 60);
  int n = static_cast<int>(rng.UniformInt(10, 500));
  for (int i = 0; i < n; ++i) {
    ts.Add(rng.UniformInt(0, 10000) * 60, rng.Uniform(0, 50));
  }
  for (int64_t interval : {300, 3600, 7200}) {
    auto agg = ts.Aggregate(interval);
    ASSERT_TRUE(agg.ok());
    EXPECT_NEAR(agg->Total(), ts.Total(), 1e-6);
  }
}

TEST_P(TimeSeriesProperty, SliceOfFullRangeMatchesValues) {
  Rng rng(GetParam() + 100);
  TimeSeries ts(0, 60);
  for (int i = 0; i < 200; ++i) {
    ts.Add(rng.UniformInt(0, 499) * 60, 1.0);
  }
  TimeSeries sliced = ts.Slice(ts.start(), ts.end());
  ASSERT_EQ(sliced.size(), ts.size());
  for (size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(sliced.values()[i], ts.values()[i]);
  }
}

TEST_P(TimeSeriesProperty, BackfillKeepsTotals) {
  Rng rng(GetParam() + 200);
  TimeSeries ts(0, 60);
  double expected = 0;
  for (int i = 0; i < 300; ++i) {
    double v = rng.Uniform(0, 5);
    // Interleave early and late timestamps: Add must extend both ways.
    Timestamp t = (rng.Bernoulli(0.5) ? 1 : -1) * rng.UniformInt(0, 2000) * 60;
    ts.Add(t, v);
    expected += v;
  }
  EXPECT_NEAR(ts.Total(), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeSeriesProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// ArrivalHistory: compaction never changes hourly totals.
// ---------------------------------------------------------------------------

class CompactionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompactionProperty, HourlyViewInvariantUnderCompaction) {
  Rng rng(GetParam());
  ArrivalHistory a, b;
  Timestamp span = 5 * kSecondsPerDay;
  for (int i = 0; i < 2000; ++i) {
    Timestamp t = rng.UniformInt(0, span / 60 - 1) * 60;
    double v = rng.Uniform(0, 10);
    a.Record(t, v);
    b.Record(t, v);
  }
  // Compact `b` at several rolling cutoffs.
  for (Timestamp cutoff : {kSecondsPerDay, 2 * kSecondsPerDay, 4 * kSecondsPerDay}) {
    b.Compact(cutoff);
  }
  auto sa = a.Series(kSecondsPerHour, 0, span);
  auto sb = b.Series(kSecondsPerHour, 0, span);
  ASSERT_TRUE(sa.ok() && sb.ok());
  ASSERT_EQ(sa->size(), sb->size());
  for (size_t i = 0; i < sa->size(); ++i) {
    EXPECT_NEAR(sa->values()[i], sb->values()[i], 1e-6) << "hour " << i;
  }
  EXPECT_LE(b.StorageBytes(), a.StorageBytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionProperty,
                         ::testing::Values(11, 12, 13));

// ---------------------------------------------------------------------------
// SQL printer: printing is a fixpoint (Print(Parse(Print(x))) == Print(x)).
// ---------------------------------------------------------------------------

TEST(SqlFixpointProperty, AllWorkloadStreamsRoundTripStably) {
  Rng rng(42);
  for (const auto& workload :
       {MakeBusTracker(), MakeAdmissions(), MakeMooc(), MakeNoisyComposite()}) {
    for (const auto& stream : workload.streams()) {
      for (int draw = 0; draw < 3; ++draw) {
        std::string sql = stream.make_sql(rng);
        auto first = sql::Parse(sql);
        ASSERT_TRUE(first.ok()) << sql;
        std::string printed = sql::Print(*first);
        auto second = sql::Parse(printed);
        ASSERT_TRUE(second.ok()) << printed;
        EXPECT_EQ(sql::Print(*second), printed) << sql;
      }
    }
  }
}

TEST(TemplatizerFixpointProperty, TemplatizingATemplateIsIdentity) {
  Rng rng(43);
  for (const auto& workload : {MakeBusTracker(), MakeAdmissions(), MakeMooc()}) {
    for (const auto& stream : workload.streams()) {
      auto original = Templatize(stream.make_sql(rng));
      ASSERT_TRUE(original.ok());
      auto again = Templatize(original->template_text);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->template_text, original->template_text);
      EXPECT_EQ(again->fingerprint, original->fingerprint);
      EXPECT_TRUE(again->parameters.empty());  // placeholders, not constants
    }
  }
}

// ---------------------------------------------------------------------------
// kd-tree equals exhaustive search across dimensions and sizes.
// ---------------------------------------------------------------------------

class KdTreeProperty
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(KdTreeProperty, NearestMatchesExhaustive) {
  auto [dim, count] = GetParam();
  Rng rng(dim * 1000 + count);
  std::vector<Vector> points;
  for (size_t i = 0; i < count; ++i) {
    Vector p(dim);
    for (double& v : p) v = rng.Uniform(-1, 1);
    points.push_back(std::move(p));
  }
  KdTree tree;
  tree.Build(points);
  for (int q = 0; q < 20; ++q) {
    Vector query(dim);
    for (double& v : query) v = rng.Uniform(-1.2, 1.2);
    auto nn = tree.Nearest(query);
    double best = 1e300;
    for (const auto& p : points) best = std::min(best, SquaredL2Distance(p, query));
    ASSERT_GE(nn.index, 0);
    EXPECT_NEAR(nn.distance_squared, best, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSizes, KdTreeProperty,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 8, 32),
                       ::testing::Values<size_t>(1, 17, 256)));

// ---------------------------------------------------------------------------
// Clusterer invariants across rho.
// ---------------------------------------------------------------------------

class ClustererInvariants : public ::testing::TestWithParam<double> {};

TEST_P(ClustererInvariants, PartitionAndMergeInvariantsHold) {
  double rho = GetParam();
  PreProcessor pre;
  Rng rng(7);
  // 12 templates with random-phase daily patterns.
  for (int k = 0; k < 12; ++k) {
    auto tmpl = Templatize("SELECT c" + std::to_string(k) + " FROM t WHERE id = 1");
    ASSERT_TRUE(tmpl.ok());
    double phase = rng.Uniform(0, 2 * M_PI);
    for (int h = 0; h < 5 * 24; ++h) {
      double t = static_cast<double>(h) / 24.0;
      pre.IngestTemplatized(*tmpl, static_cast<Timestamp>(h) * kSecondsPerHour,
                            50.0 * (1.5 + std::sin(2 * M_PI * t + phase)));
    }
  }
  OnlineClusterer::Options opts;
  opts.rho = rho;
  opts.feature.num_samples = 96;
  opts.feature.window_seconds = 3 * kSecondsPerDay;
  OnlineClusterer clusterer(opts);
  clusterer.Update(pre, 5 * kSecondsPerDay);

  // (1) Every template is assigned to exactly one existing cluster.
  std::set<TemplateId> seen;
  for (const auto& [id, cluster] : clusterer.clusters()) {
    EXPECT_FALSE(cluster.members.empty());
    for (TemplateId member : cluster.members) {
      EXPECT_TRUE(seen.insert(member).second) << "template in two clusters";
      EXPECT_EQ(clusterer.AssignmentOf(member), id);
    }
  }
  EXPECT_EQ(seen.size(), pre.num_templates());

  // (2) After the merge step, no two cluster centers are mutually more
  // similar than rho.
  const auto& clusters = clusterer.clusters();
  for (auto it_a = clusters.begin(); it_a != clusters.end(); ++it_a) {
    auto it_b = it_a;
    for (++it_b; it_b != clusters.end(); ++it_b) {
      EXPECT_LE(CosineSimilarity(it_a->second.center, it_b->second.center),
                rho + 1e-9);
    }
  }

  // (3) Volumes are non-negative and sum to the total.
  double sum = 0;
  for (const auto& [id, cluster] : clusters) {
    (void)id;
    EXPECT_GE(cluster.volume, 0.0);
    sum += cluster.volume;
  }
  EXPECT_NEAR(sum, clusterer.TotalVolume(), 1e-9);

  // (4) Updates are idempotent when nothing changed.
  auto before = clusterer.clusters().size();
  clusterer.Update(pre, 5 * kSecondsPerDay);
  EXPECT_EQ(clusterer.clusters().size(), before);
}

INSTANTIATE_TEST_SUITE_P(Rho, ClustererInvariants,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9, 0.99));

// ---------------------------------------------------------------------------
// Executor: index paths return exactly the same rows as full scans, over
// randomized predicates.
// ---------------------------------------------------------------------------

class ExecutorEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorEquivalence, IndexedAndScannedResultsAgree) {
  Rng rng(GetParam());
  // Two identical tables; one gets every index.
  dbms::Database with_index, without_index;
  for (auto* db : {&with_index, &without_index}) {
    ASSERT_TRUE(db->CreateTable("data", {{"id", true, 100000},
                                         {"k", true, 40},
                                         {"v", true, 500},
                                         {"s", false, 30}})
                    .ok());
  }
  for (int i = 1; i <= 1500; ++i) {
    int64_t k = rng.UniformInt(1, 40);
    int64_t v = rng.UniformInt(1, 500);
    std::string s = "s" + std::to_string(rng.UniformInt(1, 30));
    for (auto* db : {&with_index, &without_index}) {
      // Same values in both: reseeding per row via captured values.
      ASSERT_TRUE(
          db->GetTable("data")->Insert({int64_t{i}, k, v, s}).ok());
    }
  }
  for (const char* col : {"id", "k", "v", "s"}) {
    ASSERT_TRUE(with_index.CreateIndex("data", col).ok());
  }
  // Random predicate shapes.
  for (int q = 0; q < 40; ++q) {
    std::string where;
    switch (rng.UniformInt(0, 5)) {
      case 0:
        where = "k = " + std::to_string(rng.UniformInt(1, 40));
        break;
      case 1:
        where = "v BETWEEN " + std::to_string(rng.UniformInt(1, 250)) +
                " AND " + std::to_string(rng.UniformInt(251, 500));
        break;
      case 2:
        where = "k = " + std::to_string(rng.UniformInt(1, 40)) +
                " AND v > " + std::to_string(rng.UniformInt(1, 500));
        break;
      case 3:
        where = "s = 's" + std::to_string(rng.UniformInt(1, 30)) + "'";
        break;
      case 4:
        where = "id IN (" + std::to_string(rng.UniformInt(1, 1500)) + ", " +
                std::to_string(rng.UniformInt(1, 1500)) + ")";
        break;
      default:
        where = "k = " + std::to_string(rng.UniformInt(1, 40)) +
                " OR v = " + std::to_string(rng.UniformInt(1, 500));
        break;
    }
    std::string sql = "SELECT id FROM data WHERE " + where;
    auto fast = with_index.Execute(sql);
    auto slow = without_index.Execute(sql);
    ASSERT_TRUE(fast.ok() && slow.ok()) << sql;
    EXPECT_EQ(fast->rows_returned, slow->rows_returned) << sql;
    EXPECT_LE(fast->rows_examined, slow->rows_examined) << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorEquivalence,
                         ::testing::Values(21, 22, 23));

// ---------------------------------------------------------------------------
// What-if costs: adding a hypothetical index never makes a SELECT estimate
// worse and never makes a write estimate better.
// ---------------------------------------------------------------------------

TEST(WhatIfProperty, MonotoneCosts) {
  dbms::Database db;
  Rng rng(31);
  auto workload = MakeBusTracker();
  ASSERT_TRUE(dbms::LoadWorkloadSchema(db, workload, rng, 0.05).ok());
  const std::set<std::string> candidates = {
      "stop_times.stop_id", "buses.route_id",    "favorites.rider_id",
      "stops.route_id",     "bus_positions.bus_id"};
  for (const auto& stream : workload.streams()) {
    auto stmt = sql::Parse(stream.make_sql(rng));
    ASSERT_TRUE(stmt.ok());
    auto base = db.EstimateCost(*stmt, {});
    ASSERT_TRUE(base.ok());
    auto with_all = db.EstimateCost(*stmt, candidates);
    ASSERT_TRUE(with_all.ok());
    if (stmt->type == sql::StatementType::kSelect) {
      EXPECT_LE(*with_all, *base + 1e-9) << stream.name;
    } else if (stmt->type == sql::StatementType::kInsert) {
      EXPECT_GE(*with_all, *base - 1e-9) << stream.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Standardizer: transform/inverse round trip.
// ---------------------------------------------------------------------------

TEST(StandardizerProperty, RoundTripsRandomData) {
  Rng rng(5);
  Matrix data(50, 7);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t j = 0; j < 7; ++j) data(i, j) = rng.Gaussian(j * 10.0, j + 1.0);
  }
  Standardizer std_;
  Matrix transformed = std_.FitTransform(data);
  // Columns have ~zero mean, ~unit variance.
  for (size_t j = 0; j < 7; ++j) {
    Vector col(50);
    for (size_t i = 0; i < 50; ++i) col[i] = transformed(i, j);
    EXPECT_NEAR(Mean(col), 0.0, 1e-9);
    EXPECT_NEAR(Variance(col), 1.0, 1e-6);
  }
  // Row round trip.
  for (size_t i = 0; i < 50; i += 7) {
    Vector back = std_.Inverse(std_.Transform(data.Row(i)));
    for (size_t j = 0; j < 7; ++j) EXPECT_NEAR(back[j], data(i, j), 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Forecast models: every family improves over predicting zero on a
// learnable pattern (sanity floor across the registry).
// ---------------------------------------------------------------------------

class ModelFloor : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelFloor, BeatsZeroPredictor) {
  TimeSeries ts(0, kSecondsPerHour);
  for (int h = 0; h < 12 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    ts.Add(static_cast<Timestamp>(h) * kSecondsPerHour,
           400.0 * (1.5 + std::sin(2 * M_PI * t)));
  }
  std::vector<TimeSeries> series = {ts};
  auto ds = BuildDataset(series, 24, 1);
  ASSERT_TRUE(ds.ok());
  ModelOptions opts;
  opts.num_series = 1;
  opts.hidden_dim = 10;
  opts.embedding_dim = 8;
  opts.num_layers = 1;
  opts.max_epochs = 25;
  auto model = CreateModel(GetParam(), opts);
  ASSERT_NE(model, nullptr);
  ASSERT_TRUE(model->Fit(ds->x, ds->y).ok());
  Vector actual, predicted, zeros;
  for (size_t i = ds->x.rows() - 48; i < ds->x.rows(); ++i) {
    auto pred = model->Predict(ds->x.Row(i));
    ASSERT_TRUE(pred.ok());
    predicted.push_back(std::expm1((*pred)[0]));
    actual.push_back(std::expm1(ds->y(i, 0)));
    zeros.push_back(0.0);
  }
  EXPECT_LT(LogSpaceMse(actual, predicted), LogSpaceMse(actual, zeros));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ModelFloor,
    ::testing::Values(ModelKind::kLr, ModelKind::kArma, ModelKind::kKr,
                      ModelKind::kFnn, ModelKind::kRnn, ModelKind::kPsrnn,
                      ModelKind::kEnsemble, ModelKind::kHybrid),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      return std::string(ModelKindName(info.param));
    });

}  // namespace
}  // namespace qb5000

// Exercises the annotated mutex wrappers (common/mutex.h): RAII semantics,
// shared vs exclusive behavior under the ThreadPool, CondVar hand-off, and —
// in Debug builds — death tests proving the runtime lock-order checker fires
// on an inverted acquisition with both lock names in the report (mirroring
// check_test.cc style). Release compiles the checker out, so the same
// inverted acquisition must be silent there.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace qb5000 {
namespace {

TEST(MutexTest, ExposesLevelAndName) {
  Mutex mu(lock_level::kLeaf, "test.leaf");
  EXPECT_EQ(mu.level(), lock_level::kLeaf);
  EXPECT_STREQ(mu.name(), "test.leaf");
  SharedMutex smu(lock_level::kLeaf, "test.shared");
  EXPECT_EQ(smu.level(), lock_level::kLeaf);
  EXPECT_STREQ(smu.name(), "test.shared");
}

TEST(MutexTest, MutexLockExcludesConcurrentIncrements) {
  Mutex mu(lock_level::kLeaf, "test.counter");
  int64_t counter QB_GUARDED_BY(mu) = 0;
  constexpr size_t kTasks = 64;
  constexpr int kPerTask = 500;
  ThreadPool pool(4);
  pool.Run(kTasks, [&](size_t) {
    for (int i = 0; i < kPerTask; ++i) {
      MutexLock lock(&mu);
      ++counter;  // non-atomic: lost updates if exclusion is broken
    }
  });
  MutexLock lock(&mu);
  EXPECT_EQ(counter, static_cast<int64_t>(kTasks) * kPerTask);
}

TEST(MutexTest, WriterLockExcludesAndReadersObserveConsistentPairs) {
  SharedMutex mu(lock_level::kLeaf, "test.pair");
  // Writers keep a == b; a torn read (reader overlapping a writer) or a
  // torn write (two overlapping writers) shows up as a mismatched pair.
  int64_t a QB_GUARDED_BY(mu) = 0;
  int64_t b QB_GUARDED_BY(mu) = 0;
  std::atomic<int64_t> mismatches{0};  // lint:raw-atomic-ok (test scaffolding)
  constexpr size_t kTasks = 32;
  ThreadPool pool(4);
  pool.Run(kTasks, [&](size_t task) {
    if (task % 4 == 0) {
      for (int i = 0; i < 200; ++i) {
        WriterLock lock(&mu);
        ++a;
        ++b;
      }
    } else {
      for (int i = 0; i < 200; ++i) {
        ReaderLock lock(&mu);
        if (a != b) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  WriterLock lock(&mu);
  EXPECT_EQ(a, 8 * 200);
  EXPECT_EQ(a, b);
}

TEST(MutexTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mu(lock_level::kLeaf, "test.readers");
  std::atomic<int> active{0};  // lint:raw-atomic-ok (test scaffolding)
  std::atomic<int> high_water{0};  // lint:raw-atomic-ok (test scaffolding)
  ThreadPool pool(2);
  if (pool.concurrency() < 2) GTEST_SKIP() << "needs >= 2 lanes";
  // Each reader holds the shared lock while yielding until it sees the other
  // reader inside. Deterministic even on one CPU: yielding lets the second
  // reader run while the first still holds the lock, so only serialized
  // readers can keep `active` below 2. Bounded by iteration count, not wall
  // time, so an exclusive-behaving lock fails instead of hanging.
  pool.Run(2, [&](size_t) {
    ReaderLock lock(&mu);
    int now = active.fetch_add(1) + 1;
    for (int i = 0; now < 2 && i < 200000; ++i) {
      std::this_thread::yield();
      now = active.load();
    }
    int seen = high_water.load();
    while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
    }
    active.fetch_sub(1);
  });
  EXPECT_GE(high_water.load(), 2);
}

TEST(MutexTest, CondVarHandsOffUnderWrapperMutex) {
  Mutex mu(lock_level::kLeaf, "test.cv");
  CondVar cv;
  bool ready QB_GUARDED_BY(mu) = false;
  bool consumed QB_GUARDED_BY(mu) = false;
  ThreadPool pool(2);
  if (pool.concurrency() < 2) GTEST_SKIP() << "needs >= 2 lanes";
  pool.Run(2, [&](size_t task) {
    if (task == 0) {
      MutexLock lock(&mu);
      ready = true;
      cv.NotifyAll();
    } else {
      MutexLock lock(&mu);
      while (!ready) cv.Wait(&mu);
      consumed = true;
    }
  });
  MutexLock lock(&mu);
  EXPECT_TRUE(ready);
  EXPECT_TRUE(consumed);
}

TEST(MutexTest, MaybeLocksAcceptNull) {
  // nullptr disables the lock entirely (PreProcessor::IngestBatch without
  // an owning controller); must be a no-op, not a crash.
  { ReaderLockMaybe lock(nullptr); }
  { WriterLockMaybe lock(nullptr); }
  SharedMutex mu(lock_level::kLeaf, "test.maybe");
  { ReaderLockMaybe lock(&mu); }
  { WriterLockMaybe lock(&mu); }
}

TEST(MutexTest, OrderedAcquisitionIsSilent) {
  // Ascending levels are legal in every build type.
  Mutex outer(lock_level::kControllerState, "test.outer");
  Mutex inner(lock_level::kLeaf, "test.inner");
  MutexLock lock_outer(&outer);
  MutexLock lock_inner(&inner);
}

TEST(MutexTest, HandOverHandReleaseIsSilent) {
  // Out-of-order release (not out-of-order acquisition) is legal; the
  // checker's held-lock bookkeeping must cope with non-LIFO unlocks.
  Mutex first(lock_level::kControllerState, "test.first");
  Mutex second(lock_level::kLeaf, "test.second");
  first.Lock();
  second.Lock();
  first.Unlock();
  second.Unlock();
}

using MutexDeathTest = ::testing::Test;

TEST(MutexDeathTest, InvertedAcquisitionTripsCheckerInDebug) {
  Mutex high(lock_level::kLeaf, "test.high");
  Mutex low(lock_level::kControllerState, "test.low");
#ifdef NDEBUG
  // Release compiles the checker out: the inversion goes undetected (that
  // is the documented trade — zero overhead on the hot path).
  MutexLock lock_high(&high);
  MutexLock lock_low(&low);
#else
  MutexLock lock_high(&high);
  EXPECT_DEATH(
      MutexLock lock_low(&low),
      "QB_CHECK failed.*acquiring \"test\\.low\".*level 100.*"
      "while holding \"test\\.high\".*level 1000");
#endif
}

TEST(MutexDeathTest, SameLevelAcquisitionTripsCheckerInDebug) {
#ifndef NDEBUG
  // Two locks at one level have no defined order — and a second acquisition
  // of the *same* mutex is a self-deadlock; both are the `>=` case.
  Mutex a(lock_level::kLeaf, "test.peer_a");
  Mutex b(lock_level::kLeaf, "test.peer_b");
  MutexLock lock_a(&a);
  EXPECT_DEATH(MutexLock lock_b(&b),
               "acquiring \"test\\.peer_b\".*while holding \"test\\.peer_a\"");
  EXPECT_DEATH(a.Lock(), "while holding \"test\\.peer_a\"");
#endif
}

TEST(MutexDeathTest, SharedAcquisitionObeysTheSameOrderInDebug) {
#ifndef NDEBUG
  // Reader/writer mode does not relax the hierarchy: a shared acquisition
  // below a held level is still an inversion.
  SharedMutex high(lock_level::kLeaf, "test.shared_high");
  SharedMutex low(lock_level::kControllerState, "test.shared_low");
  ReaderLock lock_high(&high);
  EXPECT_DEATH(ReaderLock lock_low(&low),
               "acquiring \"test\\.shared_low\".*while holding "
               "\"test\\.shared_high\"");
#endif
}

}  // namespace
}  // namespace qb5000

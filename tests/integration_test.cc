// Cross-module integration tests: full pipeline scenarios that exercise
// the Pre-Processor, Clusterer, Forecaster, mini-DBMS, and advisor
// together the way the benches and a real deployment do.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/checkpoint.h"
#include "core/qb5000.h"
#include "dbms/loader.h"
#include "forecaster/evaluation.h"
#include "tuning/index_advisor.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

QueryBot5000::Config PipelineConfig() {
  QueryBot5000::Config config;
  config.clusterer.feature.num_samples = 128;
  config.clusterer.feature.window_seconds = 5 * kSecondsPerDay;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 7 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour, 12 * kSecondsPerHour};
  return config;
}

TEST(PipelineIntegration, MoocAdaptsAcrossFeatureRelease) {
  // Run the full pipeline across MOOC's day-45 release: the bot must pick
  // up the new templates, re-cluster, and keep forecasting.
  auto workload = MakeMooc({.seed = 3, .volume_scale = 0.5});
  QueryBot5000 bot(PipelineConfig());

  // Days 30..44: pre-release.
  ASSERT_TRUE(workload
                  .FeedAggregated(bot.mutable_preprocessor(),
                                  30 * kSecondsPerDay, 44 * kSecondsPerDay,
                                  10 * kSecondsPerMinute, 5)
                  .ok());
  ASSERT_TRUE(bot.RunMaintenance(44 * kSecondsPerDay, true).ok());
  size_t templates_before = bot.preprocessor().num_templates();
  auto pre_release = bot.Forecast(44 * kSecondsPerDay, kSecondsPerHour);
  ASSERT_TRUE(pre_release.ok());

  // Days 44..60: the release lands and new features ramp up.
  ASSERT_TRUE(workload
                  .FeedAggregated(bot.mutable_preprocessor(),
                                  44 * kSecondsPerDay, 60 * kSecondsPerDay,
                                  10 * kSecondsPerMinute, 6)
                  .ok());
  ASSERT_TRUE(bot.RunMaintenance(60 * kSecondsPerDay, true).ok());
  EXPECT_GT(bot.preprocessor().num_templates(), templates_before + 3);
  auto post_release = bot.Forecast(60 * kSecondsPerDay, kSecondsPerHour);
  ASSERT_TRUE(post_release.ok());
  // The post-release modeled clusters must now carry templates that did
  // not exist before the release (quiz/forum traffic) — whether as new
  // clusters or absorbed into existing ones (they share the student
  // diurnal shape, so absorption is the expected outcome).
  bool new_template_modeled = false;
  for (ClusterId id : post_release->clusters) {
    const auto& cluster = bot.clusterer().clusters().at(id);
    for (TemplateId member : cluster.members) {
      const auto* info = bot.preprocessor().GetTemplate(member);
      if (info != nullptr && info->first_seen >= 44 * kSecondsPerDay) {
        new_template_modeled = true;
      }
    }
  }
  EXPECT_TRUE(new_template_modeled);
  (void)pre_release;
}

TEST(PipelineIntegration, ForecastAccuracyDegradesGracefullyWithHorizon) {
  // End-to-end HYBRID evaluation through the Forecaster facade on
  // BusTracker: 1-hour predictions must beat 12-hour ones on log MSE.
  auto workload = MakeBusTracker({.seed = 4, .volume_scale = 0.5});
  PreProcessor pre;
  ASSERT_TRUE(workload
                  .FeedAggregated(pre, 0, 21 * kSecondsPerDay,
                                  10 * kSecondsPerMinute, 7)
                  .ok());
  OnlineClusterer::Options copts;
  copts.feature.num_samples = 128;
  copts.feature.window_seconds = 7 * kSecondsPerDay;
  OnlineClusterer clusterer(copts);
  clusterer.Update(pre, 21 * kSecondsPerDay);
  auto top = clusterer.TopClustersByVolume(3);
  ASSERT_FALSE(top.empty());
  std::vector<TimeSeries> series;
  for (ClusterId id : top) {
    auto center =
        clusterer.CenterSeries(pre, id, kSecondsPerHour, 0, 21 * kSecondsPerDay);
    ASSERT_TRUE(center.ok());
    series.push_back(std::move(*center));
  }
  ModelOptions opts;
  auto short_h = EvaluateModel(ModelKind::kLr, series, 24, 1, 0.7, opts);
  auto long_h = EvaluateModel(ModelKind::kLr, series, 24, 12, 0.7, opts);
  ASSERT_TRUE(short_h.ok() && long_h.ok());
  EXPECT_LT(short_h->log_mse, long_h->log_mse);
}

TEST(PipelineIntegration, ForecastDrivenAdvisorBeatsNoIndexes) {
  // The example_index_advisor flow as a test: forecast, advise, build,
  // verify the replay gets faster end-to-end.
  auto workload = MakeBusTracker({.seed = 5, .volume_scale = 0.4});
  dbms::Database db;
  Rng rng(6);
  ASSERT_TRUE(dbms::LoadWorkloadSchema(db, workload, rng, 0.1).ok());

  QueryBot5000 bot(PipelineConfig());
  Timestamp now = 7 * kSecondsPerDay + 8 * kSecondsPerHour;
  ASSERT_TRUE(workload
                  .FeedAggregated(bot.mutable_preprocessor(), 0, now,
                                  10 * kSecondsPerMinute, 8)
                  .ok());
  ASSERT_TRUE(bot.RunMaintenance(now, true).ok());
  auto forecast = bot.Forecast(now, kSecondsPerHour);
  ASSERT_TRUE(forecast.ok());

  std::vector<AdvisorQuery> predicted;
  for (size_t i = 0; i < forecast->clusters.size(); ++i) {
    const auto& cluster = bot.clusterer().clusters().at(forecast->clusters[i]);
    for (TemplateId member : cluster.members) {
      const auto* info = bot.preprocessor().GetTemplate(member);
      ASSERT_NE(info, nullptr);
      auto query = IndexAdvisor::MakeQuery(
          info->text, forecast->queries_per_interval[i] /
                          static_cast<double>(cluster.members.size()));
      if (query.ok()) predicted.push_back(std::move(*query));
    }
  }
  ASSERT_FALSE(predicted.empty());
  auto recommendation = IndexAdvisor::Recommend(db, predicted, 4);
  ASSERT_TRUE(recommendation.ok());
  ASSERT_FALSE(recommendation->empty());

  auto events = workload.Materialize(now, now + kSecondsPerHour,
                                     10 * kSecondsPerMinute, 9, 0.01);
  ASSERT_FALSE(events.empty());
  double before = 0, after = 0;
  for (const auto& event : events) {
    auto result = db.Execute(event.sql);
    if (result.ok()) before += result->latency_us;
  }
  for (const auto& index : *recommendation) {
    size_t dot = index.find('.');
    ASSERT_TRUE(
        db.CreateIndex(index.substr(0, dot), index.substr(dot + 1)).ok());
  }
  for (const auto& event : events) {
    auto result = db.Execute(event.sql);
    if (result.ok()) after += result->latency_us;
  }
  EXPECT_LT(after, before);
}

TEST(PipelineIntegration, CompactionBoundsStorageDuringLongRun) {
  // A month of ingestion with daily compaction: minute-level storage must
  // stay bounded by the compaction horizon instead of growing with the
  // trace, while hourly views stay exact.
  PreProcessor::Options popts;
  popts.compaction_horizon_seconds = 3 * kSecondsPerDay;
  PreProcessor with_compaction(popts);
  PreProcessor without_compaction;
  auto tmpl = Templatize("SELECT a FROM t WHERE id = 1");
  ASSERT_TRUE(tmpl.ok());
  for (int day = 0; day < 30; ++day) {
    for (int m = 0; m < 24 * 60; m += 5) {
      Timestamp ts = static_cast<Timestamp>(day) * kSecondsPerDay + m * 60;
      with_compaction.IngestTemplatized(*tmpl, ts, 3.0);
      without_compaction.IngestTemplatized(*tmpl, ts, 3.0);
    }
    with_compaction.CompactBefore((day + 1) * kSecondsPerDay);
  }
  EXPECT_LT(with_compaction.HistoryStorageBytes(),
            without_compaction.HistoryStorageBytes() / 3);
  const auto* a = with_compaction.GetTemplate(with_compaction.TemplateIds()[0]);
  const auto* b =
      without_compaction.GetTemplate(without_compaction.TemplateIds()[0]);
  auto sa = a->history.Series(kSecondsPerHour, 0, 30 * kSecondsPerDay);
  auto sb = b->history.Series(kSecondsPerHour, 0, 30 * kSecondsPerDay);
  ASSERT_TRUE(sa.ok() && sb.ok());
  for (size_t i = 0; i < sa->size(); ++i) {
    EXPECT_NEAR(sa->values()[i], sb->values()[i], 1e-6);
  }
}

TEST(PipelineIntegration, EvictionKeepsClustererConsistent) {
  // Templates that stop arriving get evicted; the next clustering pass
  // must drop them without disturbing the surviving partition.
  QueryBot5000::Config config = PipelineConfig();
  config.template_eviction_seconds = 2 * kSecondsPerDay;
  QueryBot5000 bot(config);
  auto persistent = Templatize("SELECT a FROM t WHERE id = 1");
  auto ephemeral = Templatize("SELECT b FROM gone WHERE id = 1");
  ASSERT_TRUE(persistent.ok() && ephemeral.ok());
  for (int h = 0; h < 10 * 24; ++h) {
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    double t = static_cast<double>(h) / 24.0;
    bot.IngestTemplatized(*persistent, ts, 100 * (1.5 + std::sin(2 * M_PI * t)));
    if (h < 3 * 24) {
      bot.IngestTemplatized(*ephemeral, ts, 80 * (1.5 + std::cos(2 * M_PI * t)));
    }
  }
  ASSERT_TRUE(bot.RunMaintenance(10 * kSecondsPerDay, true).ok());
  EXPECT_EQ(bot.preprocessor().num_templates(), 1u);  // ephemeral evicted
  for (const auto& [id, cluster] : bot.clusterer().clusters()) {
    (void)id;
    for (TemplateId member : cluster.members) {
      EXPECT_NE(bot.preprocessor().GetTemplate(member), nullptr);
    }
  }
  EXPECT_TRUE(bot.Forecast(10 * kSecondsPerDay, kSecondsPerHour).ok());
}

TEST(PipelineIntegration, NoisyCompositeShiftDetection) {
  // The new-template trigger must fire when the composite switches
  // benchmarks, and the pipeline must keep forecasting afterwards.
  auto workload = MakeNoisyComposite({.seed = 8});
  QueryBot5000::Config config = PipelineConfig();
  config.clusterer.new_template_trigger_ratio = 0.15;
  config.forecaster.interval_seconds = 30 * kSecondsPerMinute;
  config.forecaster.input_window = 6;
  config.forecaster.training_window_seconds = 8 * kSecondsPerHour;
  config.horizons = {kSecondsPerHour};
  config.maintenance_period_seconds = 4 * kSecondsPerHour;
  QueryBot5000 bot(config);
  // Segment 0 (wikipedia).
  ASSERT_TRUE(workload
                  .FeedAggregated(bot.mutable_preprocessor(), 0,
                                  10 * kSecondsPerHour, 10 * kSecondsPerMinute, 9)
                  .ok());
  ASSERT_TRUE(bot.RunMaintenance(10 * kSecondsPerHour, true).ok());
  EXPECT_FALSE(bot.clusterer().ShouldTrigger(bot.preprocessor()));
  // One hour into segment 1 (tatp): brand-new templates appear.
  ASSERT_TRUE(workload
                  .FeedAggregated(bot.mutable_preprocessor(),
                                  10 * kSecondsPerHour, 11 * kSecondsPerHour,
                                  10 * kSecondsPerMinute, 9)
                  .ok());
  EXPECT_TRUE(bot.clusterer().ShouldTrigger(bot.preprocessor()));
  ASSERT_TRUE(bot.RunMaintenance(11 * kSecondsPerHour).ok());  // trigger path
  EXPECT_EQ(bot.clusterer().last_update_time(), 11 * kSecondsPerHour);
  EXPECT_TRUE(bot.Forecast(11 * kSecondsPerHour, kSecondsPerHour).ok());
}

TEST(PipelineIntegration, ServiceDeltaKillRestoreForecastEquivalence) {
  // The always-on deployment loop end-to-end (DESIGN.md §14): a
  // checkpointing service ingests a real trace across a base checkpoint and
  // a delta sidecar, the process dies, and the restarted process — restored
  // from base + delta — must cluster, train, and forecast *identically* to
  // a reference process that ingested the whole trace synchronously and
  // never died.
  const std::string path =
      ::testing::TempDir() + "qb5000_integration_delta.qbc";
  Env* env = Env::Default();
  for (const std::string& base : {path, path + ".delta"}) {
    for (const char* suffix : {"", ".bak", ".tmp"}) {
      (void)env->DeleteFile(base + suffix);
    }
  }

  QueryBot5000::Config config = PipelineConfig();
  config.forecaster.training_window_seconds = 3 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour};
  constexpr Timestamp kEnd = 4 * kSecondsPerDay;
  auto workload = MakeBusTracker({.seed = 11, .volume_scale = 0.3});
  auto trace = workload.Materialize(0, kEnd, 10 * kSecondsPerMinute,
                                    /*seed=*/11, /*volume_scale=*/1.0,
                                    /*max_per_step=*/2);
  ASSERT_GT(trace.size(), 128u);

  auto feed = [&trace](QueryBot5000& bot, size_t from, size_t to,
                       bool service) {
    constexpr size_t kBatch = 64;
    for (size_t i = from; i < to; i += kBatch) {
      std::vector<QueryArrival> batch;
      for (size_t j = i; j < std::min(i + kBatch, to); ++j) {
        batch.push_back({trace[j].sql, trace[j].timestamp, 1.0});
      }
      if (service) {
        ASSERT_TRUE(bot.EnqueueBatch(batch).ok());
      } else {
        ASSERT_TRUE(bot.IngestBatch(batch).ok());
      }
    }
  };

  QueryBot5000 reference(config);
  feed(reference, 0, trace.size(), /*service=*/false);
  ASSERT_TRUE(reference.RunMaintenance(kEnd, /*force=*/true).ok());
  auto want = reference.Forecast(kEnd, kSecondsPerHour);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  {  // First process: service session ending in an un-compacted delta.
    QueryBot5000 bot(config);
    QueryBot5000::ServiceOptions opts;
    opts.queue_capacity = 256;
    opts.background = false;
    opts.auto_maintenance = false;
    opts.checkpoint_path = path;
    opts.checkpoint_period_seconds = 6 * kSecondsPerHour;
    opts.compact_every = 1000;  // deltas stay deltas for this test
    ASSERT_TRUE(bot.StartService(opts).ok());
    feed(bot, 0, trace.size() / 2, /*service=*/true);
    bot.DrainForTest();  // first periodic write: the full base
    ASSERT_TRUE(env->FileExists(path));
    feed(bot, trace.size() / 2, trace.size(), /*service=*/true);
    bot.DrainForTest();  // subsequent writes append to the sidecar
    ASSERT_TRUE(bot.StopService().ok());  // final flush, then "the kill"
    ASSERT_TRUE(env->FileExists(path + ".delta"));
  }

  RestoreReport report;
  auto restored = QueryBot5000::Restore(path, config, nullptr, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(report.delta_applied) << report.detail;
  EXPECT_DOUBLE_EQ(restored->preprocessor().total_queries(),
                   reference.preprocessor().total_queries());

  // The restarted process picks up where the dead one left off: the same
  // maintenance pass must produce the same clusters and the same forecast.
  ASSERT_TRUE(restored->RunMaintenance(kEnd, /*force=*/true).ok());
  auto got = restored->Forecast(kEnd, kSecondsPerHour);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->clusters, want->clusters);
  ASSERT_EQ(got->queries_per_interval.size(),
            want->queries_per_interval.size());
  for (size_t i = 0; i < got->queries_per_interval.size(); ++i) {
    EXPECT_DOUBLE_EQ(got->queries_per_interval[i],
                     want->queries_per_interval[i])
        << "interval " << i;
  }
}

}  // namespace
}  // namespace qb5000

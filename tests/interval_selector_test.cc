#include <cmath>

#include "common/finite.h"

#include <gtest/gtest.h>

#include "forecaster/interval_selector.h"
#include "preprocessor/templatizer.h"

namespace qb5000 {
namespace {

/// Fills a preprocessor+clusterer with a predictable diurnal workload at
/// five-minute recording resolution.
void FillDiurnal(PreProcessor& pre, OnlineClusterer& clusterer, int days) {
  auto a = Templatize("SELECT a FROM t WHERE id = 1");
  auto b = Templatize("SELECT b FROM u WHERE id = 1");
  ASSERT_TRUE(a.ok() && b.ok());
  for (int m = 0; m < days * 24 * 12; ++m) {
    Timestamp ts = static_cast<Timestamp>(m) * 5 * kSecondsPerMinute;
    double t = static_cast<double>(ts) / kSecondsPerDay;
    pre.IngestTemplatized(*a, ts, 30.0 * (1.5 + std::sin(2 * M_PI * t)));
    pre.IngestTemplatized(*b, ts, 10.0 * (1.5 + std::cos(2 * M_PI * t)));
  }
  clusterer.Update(pre, days * kSecondsPerDay);
}

OnlineClusterer::Options FastClusterOptions() {
  OnlineClusterer::Options opts;
  opts.feature.num_samples = 96;
  opts.feature.window_seconds = 3 * kSecondsPerDay;
  return opts;
}

TEST(IntervalSelectorTest, EvaluatesAndRanksCandidates) {
  PreProcessor pre;
  OnlineClusterer clusterer(FastClusterOptions());
  FillDiurnal(pre, clusterer, 10);
  IntervalSelector::Options opts;
  opts.history_seconds = 10 * kSecondsPerDay;
  auto choices =
      IntervalSelector::Evaluate(pre, clusterer, 10 * kSecondsPerDay, opts);
  ASSERT_TRUE(choices.ok()) << choices.status().ToString();
  EXPECT_GE(choices->size(), 3u);
  // Best-first by score.
  for (size_t i = 1; i < choices->size(); ++i) {
    EXPECT_LE((*choices)[i - 1].score, (*choices)[i].score);
  }
  // Every evaluated candidate produced a finite accuracy.
  for (const auto& choice : *choices) {
    EXPECT_TRUE(qb5000::IsFinite(choice.log_mse));
    EXPECT_GE(choice.train_seconds, 0.0);
  }
}

TEST(IntervalSelectorTest, PickReturnsACandidate) {
  PreProcessor pre;
  OnlineClusterer clusterer(FastClusterOptions());
  FillDiurnal(pre, clusterer, 10);
  IntervalSelector::Options opts;
  opts.history_seconds = 10 * kSecondsPerDay;
  auto pick = IntervalSelector::Pick(pre, clusterer, 10 * kSecondsPerDay, opts);
  ASSERT_TRUE(pick.ok());
  bool known = false;
  for (int64_t candidate : opts.candidates) known |= candidate == *pick;
  EXPECT_TRUE(known);
}

TEST(IntervalSelectorTest, TimeWeightShiftsChoiceCoarser) {
  PreProcessor pre;
  OnlineClusterer clusterer(FastClusterOptions());
  FillDiurnal(pre, clusterer, 10);
  IntervalSelector::Options opts;
  opts.history_seconds = 10 * kSecondsPerDay;
  opts.time_weight = 0.0;
  auto pure_accuracy =
      IntervalSelector::Evaluate(pre, clusterer, 10 * kSecondsPerDay, opts);
  opts.time_weight = 1e6;  // absurd weight: cheapest training must win
  auto cost_dominated =
      IntervalSelector::Evaluate(pre, clusterer, 10 * kSecondsPerDay, opts);
  ASSERT_TRUE(pure_accuracy.ok() && cost_dominated.ok());
  double min_train = 1e300;
  for (const auto& choice : *cost_dominated) {
    min_train = std::min(min_train, choice.train_seconds);
  }
  // LR trainings take fractions of a millisecond, so allow timing noise:
  // the winner must be among the near-cheapest candidates.
  EXPECT_LE(cost_dominated->front().train_seconds, min_train + 0.005);
}

TEST(IntervalSelectorTest, FailsWithoutClusters) {
  PreProcessor pre;
  OnlineClusterer clusterer(FastClusterOptions());
  IntervalSelector::Options opts;
  EXPECT_FALSE(IntervalSelector::Evaluate(pre, clusterer, 0, opts).ok());
}

TEST(IntervalSelectorTest, SkipsInvalidCandidates) {
  PreProcessor pre;
  OnlineClusterer clusterer(FastClusterOptions());
  FillDiurnal(pre, clusterer, 10);
  IntervalSelector::Options opts;
  opts.history_seconds = 10 * kSecondsPerDay;
  opts.candidates = {-60, 90, kSecondsPerHour};  // two invalid, one valid
  auto choices =
      IntervalSelector::Evaluate(pre, clusterer, 10 * kSecondsPerDay, opts);
  ASSERT_TRUE(choices.ok());
  ASSERT_EQ(choices->size(), 1u);
  EXPECT_EQ(choices->front().interval_seconds, kSecondsPerHour);
}

}  // namespace
}  // namespace qb5000

// The parallel runtime (common/thread_pool.h): deterministic static
// partitioning, exception propagation, nested use via the helping
// scheduler, the SetThreadCount knob — and the determinism contract the
// rest of the library builds on: for a fixed seed, the full pipeline's
// forecasts are bit-identical at 1, 2, and 8 threads, on all four workload
// generators.
#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/qb5000.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

/// Restores the previous global thread count when the test exits, so tests
/// are order-independent within the binary.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(GetThreadCount()) {}
  ~ThreadCountGuard() { SetThreadCount(saved_); }

 private:
  size_t saved_;
};

TEST(ThreadPool, RunExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 257;
  std::vector<std::atomic<int>> hits(kTasks);  // lint:raw-atomic-ok (test scaffolding)
  pool.Run(kTasks, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroAndSingleTaskBatches) {
  ThreadPool pool(4);
  pool.Run(0, [&](size_t) { FAIL() << "no tasks should run"; });
  size_t ran = 0;
  pool.Run(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++ran;
  });
  EXPECT_EQ(ran, 1u);
}

TEST(ThreadPool, SequentialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<size_t> order;
  pool.Run(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, RethrowsLowestTaskIndexException) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);  // lint:raw-atomic-ok (test scaffolding)
  auto run = [&] {
    pool.Run(64, [&](size_t i) {
      hits[i].fetch_add(1);
      if (i == 17) throw std::runtime_error("task 17");
      if (i == 41) throw std::runtime_error("task 41");
    });
  };
  EXPECT_THROW(
      {
        try {
          run();
        } catch (const std::runtime_error& e) {
          // The surfaced error is the lowest-index one regardless of which
          // thread hit which failure first.
          EXPECT_STREQ(e.what(), "task 17");
          throw;
        }
      },
      std::runtime_error);
  // The whole batch still drained before the rethrow.
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SequentialExceptionPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.Run(3,
                        [&](size_t i) {
                          if (i == 1) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
}

TEST(ParallelFor, CoversRangeWithExactChunks) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  for (size_t grain : {1u, 3u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(100);  // lint:raw-atomic-ok (test scaffolding)
    std::atomic<size_t> chunks{0};  // lint:raw-atomic-ok (test scaffolding)
    ParallelFor(0, 100, grain, [&](size_t lo, size_t hi) {
      ASSERT_LT(lo, hi);
      ASSERT_LE(hi, 100u);
      // Chunk boundaries are the static partition, never merged or split.
      EXPECT_EQ(lo % grain, 0u);
      EXPECT_TRUE(hi == 100 || hi - lo == grain);
      chunks.fetch_add(1);
      for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
    EXPECT_EQ(chunks.load(), (100 + grain - 1) / grain);
  }
}

TEST(ParallelFor, GrainEdgeCases) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  // Empty range: the body never runs.
  ParallelFor(5, 5, 1, [&](size_t, size_t) { FAIL(); });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { FAIL(); });
  // grain == 0 behaves as 1.
  std::atomic<size_t> calls{0};  // lint:raw-atomic-ok (test scaffolding)
  ParallelFor(0, 5, 0, [&](size_t lo, size_t hi) {
    EXPECT_EQ(hi, lo + 1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 5u);
  // grain beyond the range: one inline chunk covering everything.
  size_t single = 0;
  ParallelFor(10, 20, 1000, [&](size_t lo, size_t hi) {
    EXPECT_EQ(lo, 10u);
    EXPECT_EQ(hi, 20u);
    ++single;
  });
  EXPECT_EQ(single, 1u);
  // Non-zero begin: chunks are anchored at begin.
  std::vector<std::atomic<int>> hits(30);  // lint:raw-atomic-ok (test scaffolding)
  ParallelFor(10, 30, 8, [&](size_t lo, size_t hi) {
    EXPECT_EQ((lo - 10) % 8, 0u);
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 10; i < 30; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, NestedRegionsCompleteWithoutDeadlock) {
  ThreadCountGuard guard;
  SetThreadCount(4);
  // Outer x inner x innermost: every level fans out on the same pool. The
  // helping scheduler must keep claiming pending tasks while outer regions
  // wait, or this would deadlock with 4 lanes and 8 outer tasks.
  std::vector<long> outer_sums(8, 0);
  ParallelFor(0, 8, 1, [&](size_t olo, size_t ohi) {
    for (size_t o = olo; o < ohi; ++o) {
      std::vector<long> inner_sums(4, 0);
      ParallelFor(0, 4, 1, [&](size_t ilo, size_t ihi) {
        for (size_t i = ilo; i < ihi; ++i) {
          // Per-chunk partials reduced in chunk order — the same ordered
          // reduction pattern the library's kernels use.
          std::vector<long> partials((100 + 15) / 16, 0);
          ParallelFor(0, 100, 16, [&partials](size_t lo, size_t hi) {
            long local = 0;
            for (size_t j = lo; j < hi; ++j) local += static_cast<long>(j);
            partials[lo / 16] = local;
          });
          long s = 0;
          for (long p : partials) s += p;
          inner_sums[i] = s;
        }
      });
      long total = 0;
      for (long v : inner_sums) total += v;
      outer_sums[o] = total;
    }
  });
  for (long v : outer_sums) EXPECT_EQ(v, 4 * 4950);
}

TEST(ParallelFor, SetThreadCountKnob) {
  ThreadCountGuard guard;
  EXPECT_EQ(SetThreadCount(1), 1u);
  EXPECT_EQ(GetThreadCount(), 1u);
  EXPECT_EQ(SetThreadCount(6), 6u);
  EXPECT_EQ(GetThreadCount(), 6u);
  EXPECT_EQ(GlobalThreadPool().concurrency(), 6u);
  // 0 selects hardware concurrency, clamped to >= 1.
  size_t hw = SetThreadCount(0);
  EXPECT_GE(hw, 1u);
  EXPECT_EQ(GetThreadCount(), hw);
}

// --- End-to-end determinism ------------------------------------------------

/// Trains the full pipeline on `workload` at the given concurrency and
/// returns the one-hour forecast. Small model dimensions keep the three
/// (threads) x four (workloads) grid fast; determinism does not depend on
/// the sizes.
Vector ForecastAtThreadCount(const SyntheticWorkload& workload,
                             size_t threads) {
  SetThreadCount(threads);
  QueryBot5000::Config config;
  config.forecaster.input_window = 12;
  config.forecaster.model.embedding_dim = 6;
  config.forecaster.model.hidden_dim = 8;
  config.forecaster.model.max_epochs = 3;
  config.horizons = {kSecondsPerHour};
  QueryBot5000 bot(config);
  Timestamp end = 4 * kSecondsPerDay;
  Status fed = workload.FeedAggregated(bot.mutable_preprocessor(), 0, end,
                                       kSecondsPerMinute, /*seed=*/5);
  EXPECT_TRUE(fed.ok()) << fed.message();
  Status maint = bot.RunMaintenance(end, /*force=*/true);
  EXPECT_TRUE(maint.ok()) << maint.message();
  auto forecast = bot.Forecast(end, kSecondsPerHour);
  EXPECT_TRUE(forecast.ok()) << forecast.status().message();
  return forecast.ok() ? forecast->queries_per_interval : Vector{};
}

TEST(Determinism, ForecastsBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const struct {
    const char* name;
    SyntheticWorkload workload;
  } cases[] = {
      {"BusTracker", MakeBusTracker()},
      {"Admissions", MakeAdmissions()},
      {"MOOC", MakeMooc()},
      {"NoisyComposite", MakeNoisyComposite()},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    Vector baseline = ForecastAtThreadCount(c.workload, 1);
    ASSERT_FALSE(baseline.empty());
    for (size_t threads : {2u, 8u}) {
      SCOPED_TRACE(threads);
      Vector got = ForecastAtThreadCount(c.workload, threads);
      ASSERT_EQ(got.size(), baseline.size());
      for (size_t i = 0; i < got.size(); ++i) {
        // Bit-identical, not approximately equal: the decomposition and
        // every reduction order are independent of the thread count.
        EXPECT_EQ(got[i], baseline[i]) << "cluster " << i;
      }
    }
  }
}

}  // namespace
}  // namespace qb5000

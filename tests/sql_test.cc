#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace qb5000::sql {
namespace {

/// Test shim: tokens returned here view a per-call Arena kept alive for the
/// test process (token text is only valid while its arena lives).
Result<std::vector<Token>> Tokenize(std::string_view sql) {
  static std::vector<std::unique_ptr<Arena>>* arenas =
      new std::vector<std::unique_ptr<Arena>>();
  arenas->push_back(std::make_unique<Arena>());
  return sql::Tokenize(sql, arenas->back().get());
}

std::string RoundTrip(const std::string& in) {
  auto stmt = Parse(in);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString() << " for: " << in;
  if (!stmt.ok()) return "";
  return Print(*stmt);
}

TEST(LexerTest, NormalizesKeywordsAndIdentifiers) {
  auto tokens = Tokenize("select Name FROM Users");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "name");
  EXPECT_EQ((*tokens)[3].text, "users");
}

TEST(LexerTest, StringLiteralEscapes) {
  auto tokens = Tokenize("SELECT 'it''s' ");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kString);
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("1 2.5 3e4 .5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[2].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[3].type, TokenType::kFloat);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT 1 -- trailing\n/* block */ FROM t");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // SELECT 1 FROM t END
  EXPECT_EQ((*tokens)[2].text, "FROM");
}

TEST(LexerTest, OperatorNormalization) {
  auto tokens = Tokenize("a != b <> c <= d");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<>");
  EXPECT_EQ((*tokens)[5].text, "<=");
}

TEST(LexerTest, PlaceholderForms) {
  auto tokens = Tokenize("? $1 $23");
  ASSERT_TRUE(tokens.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kPlaceholder);
    EXPECT_EQ((*tokens)[i].text, "?");
  }
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
  EXPECT_FALSE(Tokenize("SELECT /* oops").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT id, name FROM users WHERE id = 5");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->type, StatementType::kSelect);
  const auto& s = *stmt->select;
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].expr->column, "id");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "users");
  ASSERT_TRUE(s.where != nullptr);
  EXPECT_EQ(s.where->op, "=");
}

TEST(ParserTest, SelectStarRoundTrip) {
  EXPECT_EQ(RoundTrip("select * from T where a=1 and b='x'"),
            "SELECT * FROM t WHERE a = 1 AND b = 'x'");
}

TEST(ParserTest, JoinRoundTrip) {
  EXPECT_EQ(RoundTrip("SELECT u.id FROM users u JOIN orders o ON u.id = o.uid"),
            "SELECT u.id FROM users AS u JOIN orders AS o ON u.id = o.uid");
}

TEST(ParserTest, LeftJoin) {
  auto stmt = Parse(
      "SELECT a.x FROM a LEFT OUTER JOIN b ON a.id = b.id WHERE b.id IS NULL");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->select->joins.size(), 1u);
  EXPECT_EQ(stmt->select->joins[0].join_type, "LEFT JOIN");
  EXPECT_EQ(stmt->select->where->op, "IS NULL");
}

TEST(ParserTest, GroupByHavingOrderByLimit) {
  std::string out = RoundTrip(
      "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3 "
      "ORDER BY dept DESC LIMIT 10 OFFSET 5");
  EXPECT_EQ(out,
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3 "
            "ORDER BY dept DESC LIMIT 10 OFFSET 5");
}

TEST(ParserTest, InListAndBetween) {
  std::string out = RoundTrip(
      "SELECT x FROM t WHERE a IN (1,2,3) AND b NOT IN ('p') AND c BETWEEN 1 AND 9");
  EXPECT_EQ(out,
            "SELECT x FROM t WHERE a IN (1, 2, 3) AND b NOT IN ('p') AND "
            "c BETWEEN 1 AND 9");
}

TEST(ParserTest, LikeAndNotLike) {
  std::string out = RoundTrip("SELECT x FROM t WHERE n LIKE 'a%' AND m NOT LIKE 'b_'");
  EXPECT_EQ(out, "SELECT x FROM t WHERE n LIKE 'a%' AND m NOT LIKE 'b_'");
}

TEST(ParserTest, OrPrecedenceParenthesized) {
  // (a=1 OR b=2) AND c=3 must keep its parentheses on print.
  std::string out = RoundTrip("SELECT x FROM t WHERE (a=1 OR b=2) AND c=3");
  EXPECT_EQ(out, "SELECT x FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  // Reparse the printed form and print again: must be stable.
  EXPECT_EQ(RoundTrip(out), out);
}

TEST(ParserTest, AggregateDistinct) {
  std::string out = RoundTrip("SELECT COUNT(DISTINCT uid) FROM visits");
  EXPECT_EQ(out, "SELECT COUNT(DISTINCT uid) FROM visits");
}

TEST(ParserTest, NegativeNumbersFoldIntoLiteral) {
  auto stmt = Parse("SELECT x FROM t WHERE a = -5");
  ASSERT_TRUE(stmt.ok());
  const Expr& where = *stmt->select->where;
  EXPECT_EQ(where.right->kind, ExprKind::kLiteral);
  EXPECT_EQ(where.right->literal.text, "-5");
}

TEST(ParserTest, InsertSingleRow) {
  auto stmt = Parse("INSERT INTO logs (msg, level) VALUES ('hi', 3)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->type, StatementType::kInsert);
  EXPECT_EQ(stmt->insert->table, "logs");
  ASSERT_EQ(stmt->insert->columns.size(), 2u);
  ASSERT_EQ(stmt->insert->rows.size(), 1u);
}

TEST(ParserTest, InsertBatched) {
  auto stmt = Parse("INSERT INTO t (a) VALUES (1), (2), (3)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->insert->rows.size(), 3u);
}

TEST(ParserTest, UpdateRoundTrip) {
  EXPECT_EQ(RoundTrip("update T set A = 2, b='x' where id=7"),
            "UPDATE t SET a = 2, b = 'x' WHERE id = 7");
}

TEST(ParserTest, DeleteRoundTrip) {
  EXPECT_EQ(RoundTrip("DELETE FROM sessions WHERE expires < 1234"),
            "DELETE FROM sessions WHERE expires < 1234");
}

TEST(ParserTest, PlaceholdersAccepted) {
  EXPECT_EQ(RoundTrip("SELECT x FROM t WHERE id = ? AND v > $2"),
            "SELECT x FROM t WHERE id = ? AND v > ?");
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_EQ(RoundTrip("SELECT 1;"), "SELECT 1");
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parse("SELEKT * FROM t").ok());
  EXPECT_FALSE(Parse("SELECT FROM").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES").ok());
  EXPECT_FALSE(Parse("SELECT 1 extra garbage (").ok());
}

TEST(ParserTest, WhitespaceAndCaseNormalization) {
  // Differently formatted but identical statements print identically.
  std::string a = RoundTrip("SELECT  name\nFROM users\tWHERE id=3");
  std::string b = RoundTrip("select name from USERS where ID = 3");
  EXPECT_EQ(a, b);
}

TEST(PrinterTest, ExprClone) {
  auto stmt = Parse("SELECT x FROM t WHERE a IN (1,2) AND b BETWEEN 3 AND 4");
  ASSERT_TRUE(stmt.ok());
  ExprPtr clone = stmt->select->where->Clone();
  EXPECT_EQ(PrintExpr(*clone), PrintExpr(*stmt->select->where));
}

}  // namespace
}  // namespace qb5000::sql

#include <gtest/gtest.h>

#include "preprocessor/arrival_history.h"
#include "preprocessor/preprocessor.h"
#include "preprocessor/reservoir_sampler.h"
#include "preprocessor/templatizer.h"

namespace qb5000 {
namespace {

TEST(TemplatizerTest, ExtractsWhereConstants) {
  auto out = Templatize("SELECT name FROM users WHERE id = 42 AND age > 18");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->template_text,
            "SELECT name FROM users WHERE id = ? AND age > ?");
  ASSERT_EQ(out->parameters.size(), 2u);
  EXPECT_EQ(out->parameters[0].text, "42");
  EXPECT_EQ(out->parameters[1].text, "18");
  EXPECT_FALSE(out->used_fallback);
}

TEST(TemplatizerTest, SameTemplateDifferentConstants) {
  auto a = Templatize("SELECT name FROM users WHERE id = 1");
  auto b = Templatize("select NAME from USERS where ID=99999");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->template_text, b->template_text);
  EXPECT_EQ(a->fingerprint, b->fingerprint);
}

TEST(TemplatizerTest, UpdateSetAndWhereConstants) {
  auto out = Templatize("UPDATE accounts SET balance = 100.5 WHERE id = 7");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->template_text, "UPDATE accounts SET balance = ? WHERE id = ?");
  ASSERT_EQ(out->parameters.size(), 2u);
  EXPECT_EQ(out->parameters[0].type, sql::LiteralType::kFloat);
}

TEST(TemplatizerTest, BatchedInsertCollapsesAndCountsTuples) {
  auto out = Templatize("INSERT INTO pos (x, y) VALUES (1, 2), (3, 4), (5, 6)");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->template_text, "INSERT INTO pos (x, y) VALUES (?, ?)");
  EXPECT_EQ(out->batch_size, 3u);
  ASSERT_EQ(out->parameters.size(), 2u);  // first tuple only
  EXPECT_EQ(out->parameters[0].text, "1");
}

TEST(TemplatizerTest, BatchSizesShareOneTemplate) {
  auto a = Templatize("INSERT INTO pos (x, y) VALUES (1, 2)");
  auto b = Templatize("INSERT INTO pos (x, y) VALUES (1, 2), (3, 4)");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->template_text, b->template_text);
  EXPECT_EQ(a->fingerprint, b->fingerprint);
}

TEST(TemplatizerTest, InListConstantsExtracted) {
  auto out = Templatize("SELECT x FROM t WHERE a IN (10, 20, 30)");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->template_text, "SELECT x FROM t WHERE a IN (?, ?, ?)");
  EXPECT_EQ(out->parameters.size(), 3u);
}

TEST(TemplatizerTest, CollectsTablesSorted) {
  auto out = Templatize(
      "SELECT z.v FROM zebra z JOIN apple a ON z.id = a.id WHERE a.k = 1");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->tables.size(), 2u);
  EXPECT_EQ(out->tables[0], "apple");
  EXPECT_EQ(out->tables[1], "zebra");
}

TEST(TemplatizerTest, FingerprintDistinguishesPredicates) {
  auto a = Templatize("SELECT x FROM t WHERE a = 1");
  auto b = Templatize("SELECT x FROM t WHERE a > 1");
  auto c = Templatize("SELECT x FROM t WHERE b = 1");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a->fingerprint, b->fingerprint);
  EXPECT_NE(a->fingerprint, c->fingerprint);
}

TEST(TemplatizerTest, FingerprintDistinguishesProjections) {
  auto a = Templatize("SELECT x FROM t WHERE a = 1");
  auto b = Templatize("SELECT y FROM t WHERE a = 1");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->fingerprint, b->fingerprint);
}

TEST(TemplatizerTest, FallbackOnUnsupportedSyntax) {
  // CREATE is outside the dialect; fallback must still strip constants.
  auto out = Templatize("CREATE INDEX idx ON t (c)");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->used_fallback);
  auto out2 = Templatize("VACUUM 42");
  ASSERT_TRUE(out2.ok());
  EXPECT_TRUE(out2->used_fallback);
  EXPECT_EQ(out2->parameters.size(), 1u);
}

TEST(TemplatizerTest, FallbackStableAcrossConstants) {
  auto a = Templatize("EXPLAIN SELECT 1");
  auto b = Templatize("EXPLAIN SELECT 2");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->fingerprint, b->fingerprint);
}

TEST(ReservoirSamplerTest, KeepsAllUnderCapacity) {
  ReservoirSampler<int> sampler(5);
  Rng rng(1);
  for (int i = 0; i < 3; ++i) sampler.Add(i, rng);
  EXPECT_EQ(sampler.items().size(), 3u);
  EXPECT_EQ(sampler.seen(), 3u);
}

TEST(ReservoirSamplerTest, CapacityBounded) {
  ReservoirSampler<int> sampler(10);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) sampler.Add(i, rng);
  EXPECT_EQ(sampler.items().size(), 10u);
  EXPECT_EQ(sampler.seen(), 10000u);
}

TEST(ReservoirSamplerTest, ApproximatelyUniform) {
  // Each of 100 items should land in a 10-slot reservoir ~10% of the time.
  const int kTrials = 2000;
  const int kStream = 100;
  std::vector<int> hits(kStream, 0);
  Rng rng(3);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> sampler(10);
    for (int i = 0; i < kStream; ++i) sampler.Add(i, rng);
    for (int kept : sampler.items()) ++hits[kept];
  }
  // Expected hits per item = kTrials * 10 / 100 = 200. Allow wide slack.
  for (int i = 0; i < kStream; ++i) {
    EXPECT_GT(hits[i], 120) << "item " << i;
    EXPECT_LT(hits[i], 280) << "item " << i;
  }
}

TEST(ArrivalHistoryTest, RecordAndSeries) {
  ArrivalHistory h;
  h.Record(60, 5);
  h.Record(120, 3);
  auto series = h.Series(kSecondsPerMinute, 60, 180);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 2u);
  EXPECT_DOUBLE_EQ(series->values()[0], 5);
  EXPECT_DOUBLE_EQ(series->values()[1], 3);
  EXPECT_DOUBLE_EQ(h.Total(), 8);
}

TEST(ArrivalHistoryTest, SeriesAggregatesToHours) {
  ArrivalHistory h;
  for (int m = 0; m < 120; ++m) h.Record(m * 60, 1);
  auto series = h.Series(kSecondsPerHour, 0, 2 * kSecondsPerHour);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 2u);
  EXPECT_DOUBLE_EQ(series->values()[0], 60);
  EXPECT_DOUBLE_EQ(series->values()[1], 60);
}

TEST(ArrivalHistoryTest, CompactPreservesTotalsAndSpreads) {
  ArrivalHistory h;
  for (int m = 0; m < 60; ++m) h.Record(m * 60, 2);  // hour 0: 120 total
  h.Record(2 * kSecondsPerHour, 7);
  size_t before_bytes = h.StorageBytes();
  h.Compact(kSecondsPerHour);
  EXPECT_LT(h.StorageBytes(), before_bytes);
  // Hourly view unchanged by compaction.
  auto hourly = h.Series(kSecondsPerHour, 0, 3 * kSecondsPerHour);
  ASSERT_TRUE(hourly.ok());
  EXPECT_DOUBLE_EQ(hourly->values()[0], 120);
  EXPECT_DOUBLE_EQ(hourly->values()[2], 7);
  // Minute view of the archived hour spreads the total uniformly.
  auto minutes = h.Series(kSecondsPerMinute, 0, kSecondsPerHour);
  ASSERT_TRUE(minutes.ok());
  EXPECT_NEAR(minutes->values()[0], 2.0, 1e-9);
  EXPECT_NEAR(minutes->Total(), 120.0, 1e-9);
}

TEST(ArrivalHistoryTest, LateArrivalAfterCompactionGoesToArchive) {
  ArrivalHistory h;
  h.Record(10 * kSecondsPerHour, 1);
  h.Compact(10 * kSecondsPerHour);  // nothing before that hour yet
  h.Compact(11 * kSecondsPerHour);
  h.Record(5 * kSecondsPerHour, 4);  // late, pre-cutoff arrival
  auto hourly = h.Series(kSecondsPerHour, 0, 12 * kSecondsPerHour);
  ASSERT_TRUE(hourly.ok());
  EXPECT_DOUBLE_EQ(hourly->values()[5], 4);
  EXPECT_DOUBLE_EQ(hourly->values()[10], 1);
}

TEST(ArrivalHistoryTest, RejectsBadInterval) {
  ArrivalHistory h;
  h.Record(0, 1);
  EXPECT_FALSE(h.Series(90, 0, 600).ok());
  EXPECT_FALSE(h.Series(0, 0, 600).ok());
}

TEST(PreProcessorTest, GroupsEquivalentQueries) {
  PreProcessor pre;
  auto id1 = pre.Ingest("SELECT name FROM users WHERE id = 1", 0);
  auto id2 = pre.Ingest("SELECT name FROM users WHERE id = 2", 60);
  auto id3 = pre.Ingest("SELECT email FROM users WHERE id = 3", 120);
  ASSERT_TRUE(id1.ok() && id2.ok() && id3.ok());
  EXPECT_EQ(*id1, *id2);
  EXPECT_NE(*id1, *id3);
  EXPECT_EQ(pre.num_templates(), 2u);
  EXPECT_DOUBLE_EQ(pre.total_queries(), 3.0);
}

TEST(PreProcessorTest, TracksPerTypeCounts) {
  PreProcessor pre;
  ASSERT_TRUE(pre.Ingest("SELECT 1", 0).ok());
  ASSERT_TRUE(pre.Ingest("INSERT INTO t (a) VALUES (1)", 0).ok());
  ASSERT_TRUE(pre.Ingest("UPDATE t SET a = 2 WHERE a = 1", 0).ok());
  ASSERT_TRUE(pre.Ingest("DELETE FROM t WHERE a = 2", 0).ok());
  EXPECT_DOUBLE_EQ(pre.QueriesOfType(sql::StatementType::kSelect), 1);
  EXPECT_DOUBLE_EQ(pre.QueriesOfType(sql::StatementType::kInsert), 1);
  EXPECT_DOUBLE_EQ(pre.QueriesOfType(sql::StatementType::kUpdate), 1);
  EXPECT_DOUBLE_EQ(pre.QueriesOfType(sql::StatementType::kDelete), 1);
}

TEST(PreProcessorTest, ArrivalHistoryPerTemplate) {
  PreProcessor pre;
  for (int m = 0; m < 10; ++m) {
    ASSERT_TRUE(
        pre.Ingest("SELECT name FROM users WHERE id = " + std::to_string(m),
                   m * 60)
            .ok());
  }
  auto ids = pre.TemplateIds();
  ASSERT_EQ(ids.size(), 1u);
  const auto* info = pre.GetTemplate(ids[0]);
  ASSERT_NE(info, nullptr);
  EXPECT_DOUBLE_EQ(info->total_queries, 10);
  auto series = info->history.Series(kSecondsPerMinute, 0, 600);
  ASSERT_TRUE(series.ok());
  EXPECT_DOUBLE_EQ(series->Total(), 10);
}

TEST(PreProcessorTest, ParameterSamplesKept) {
  PreProcessor pre;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        pre.Ingest("SELECT name FROM users WHERE id = " + std::to_string(i), 0)
            .ok());
  }
  const auto* info = pre.GetTemplate(pre.TemplateIds()[0]);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->param_samples.items().size(), 20u);
  EXPECT_EQ(info->param_samples.seen(), 100u);
}

TEST(PreProcessorTest, NewTemplateRatio) {
  PreProcessor pre;
  ASSERT_TRUE(pre.Ingest("SELECT a FROM t WHERE x = 1", 0).ok());
  ASSERT_TRUE(pre.Ingest("SELECT b FROM t WHERE x = 1", 0).ok());
  ASSERT_TRUE(pre.Ingest("SELECT c FROM t WHERE x = 1", 1000).ok());
  ASSERT_TRUE(pre.Ingest("SELECT d FROM t WHERE x = 1", 1000).ok());
  EXPECT_DOUBLE_EQ(pre.NewTemplateRatio(500), 0.5);
  EXPECT_DOUBLE_EQ(pre.NewTemplateRatio(0), 1.0);
  EXPECT_DOUBLE_EQ(pre.NewTemplateRatio(2000), 0.0);
}

TEST(PreProcessorTest, EvictIdleTemplates) {
  PreProcessor pre;
  ASSERT_TRUE(pre.Ingest("SELECT a FROM t WHERE x = 1", 0).ok());
  ASSERT_TRUE(pre.Ingest("SELECT b FROM t WHERE x = 1", 5000).ok());
  auto evicted = pre.EvictIdleTemplates(1000);
  EXPECT_EQ(evicted.size(), 1u);
  EXPECT_EQ(pre.num_templates(), 1u);
  // Re-ingesting the evicted template creates a fresh id.
  auto id = pre.Ingest("SELECT a FROM t WHERE x = 1", 6000);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(pre.num_templates(), 2u);
}

TEST(PreProcessorTest, IngestTemplatizedBatch) {
  PreProcessor pre;
  auto tmpl = Templatize("SELECT a FROM t WHERE x = 1");
  ASSERT_TRUE(tmpl.ok());
  TemplateId id = pre.IngestTemplatized(*tmpl, 0, 500.0);
  EXPECT_DOUBLE_EQ(pre.total_queries(), 500.0);
  const auto* info = pre.GetTemplate(id);
  ASSERT_NE(info, nullptr);
  EXPECT_DOUBLE_EQ(info->history.Total(), 500.0);
}

TEST(PreProcessorTest, MalformedSqlReturnsError) {
  PreProcessor pre;
  EXPECT_FALSE(pre.Ingest("SELECT 'unterminated", 0).ok());
}

}  // namespace
}  // namespace qb5000

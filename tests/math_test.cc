#include <cmath>

#include <gtest/gtest.h>

#include "math/adam.h"
#include "math/linalg.h"
#include "math/matrix.h"
#include "math/stats.h"

namespace qb5000 {
namespace {

TEST(MatrixTest, MatMul) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, MatVecAndTranspose) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  Vector v = {1, 1};
  Vector r = a.MatVec(v);
  EXPECT_DOUBLE_EQ(r[0], 3);
  EXPECT_DOUBLE_EQ(r[1], 7);
  Matrix t = a.Transpose();
  EXPECT_DOUBLE_EQ(t(0, 1), 3);
  EXPECT_DOUBLE_EQ(t(1, 0), 2);
}

TEST(MatrixTest, RowRoundTrip) {
  Matrix a(2, 3);
  a.SetRow(1, {7, 8, 9});
  Vector r = a.Row(1);
  EXPECT_EQ(r, (Vector{7, 8, 9}));
}

TEST(LinalgTest, CholeskySolveIdentity) {
  Matrix eye = Matrix::Identity(3);
  auto x = CholeskySolve(eye, {1, 2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
}

TEST(LinalgTest, CholeskySolveSpd) {
  // A = [[4,2],[2,3]], b = [10, 9]; solution [1.5, 2].
  Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 3;
  auto x = CholeskySolve(a, {10, 9});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.5, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(LinalgTest, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 0;
  EXPECT_FALSE(CholeskySolve(a, {1, 1}).ok());
}

TEST(LinalgTest, RidgeRecoversLinearMap) {
  // y = 2*x0 - 3*x1 with plenty of samples and tiny lambda.
  Matrix x(50, 2);
  Matrix y(50, 1);
  for (size_t i = 0; i < 50; ++i) {
    double a = std::sin(0.1 * static_cast<double>(i));
    double b = std::cos(0.3 * static_cast<double>(i));
    x(i, 0) = a;
    x(i, 1) = b;
    y(i, 0) = 2 * a - 3 * b;
  }
  auto w = RidgeRegression(x, y, 1e-8);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)(0, 0), 2.0, 1e-4);
  EXPECT_NEAR((*w)(1, 0), -3.0, 1e-4);
}

TEST(LinalgTest, RidgeRejectsShapeMismatch) {
  Matrix x(3, 2);
  Matrix y(4, 1);
  EXPECT_FALSE(RidgeRegression(x, y, 0.1).ok());
}

TEST(LinalgTest, SymmetricEigenDiagonal) {
  Matrix a(3, 3);
  a(0, 0) = 3; a(1, 1) = 1; a(2, 2) = 2;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 2, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[2], 1, 1e-10);
}

TEST(LinalgTest, SymmetricEigenKnownMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  double v0 = eig->eigenvectors(0, 0);
  double v1 = eig->eigenvectors(1, 0);
  EXPECT_NEAR(std::fabs(v0), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(LinalgTest, PcaFindsDominantDirection) {
  // Points spread along (1, 1) direction: first PC captures nearly all
  // variance, so projected coordinate ~ +/- distance along the diagonal.
  Matrix data(100, 2);
  for (size_t i = 0; i < 100; ++i) {
    double t = static_cast<double>(i) - 50.0;
    data(i, 0) = t + 0.01 * std::sin(static_cast<double>(i));
    data(i, 1) = t - 0.01 * std::sin(static_cast<double>(i));
  }
  auto proj = PcaProject(data, 1);
  ASSERT_TRUE(proj.ok());
  ASSERT_EQ(proj->rows(), 100u);
  ASSERT_EQ(proj->cols(), 1u);
  // Extremes project to roughly +/- 50*sqrt(2).
  double lo = (*proj)(0, 0);
  double hi = (*proj)(99, 0);
  EXPECT_NEAR(std::fabs(lo), 50.0 * std::sqrt(2.0), 1.0);
  EXPECT_NEAR(std::fabs(hi), 49.0 * std::sqrt(2.0), 1.0);
  EXPECT_LT(lo * hi, 0.0);  // opposite signs
}

TEST(LinalgTest, PcaRejectsBadK) {
  Matrix data(5, 2, 1.0);
  EXPECT_FALSE(PcaProject(data, 0).ok());
  EXPECT_FALSE(PcaProject(data, 3).ok());
}

TEST(StatsTest, MeanVariance) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Variance({2, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, Mse) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2}, {1, 4}), 2.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({}, {}), 0.0);
}

TEST(StatsTest, LogSpaceMseExactPredictionIsFloored) {
  Vector v = {10, 100, 1000};
  double mse = LogSpaceMse(v, v);
  EXPECT_DOUBLE_EQ(mse, std::log(1e-12));
}

TEST(StatsTest, LogSpaceMseOrdersByError) {
  Vector actual = {100, 200, 300};
  Vector close = {110, 190, 310};
  Vector far = {10, 20, 3000};
  EXPECT_LT(LogSpaceMse(actual, close), LogSpaceMse(actual, far));
}

TEST(StatsTest, CosineSimilarity) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 2}, {2, 4}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
}

TEST(StatsTest, Quantile) {
  std::vector<double> v = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (x-3)^2 + (y+1)^2.
  std::vector<double> params = {0.0, 0.0};
  AdamOptimizer::Options opts;
  opts.learning_rate = 0.05;
  AdamOptimizer adam(2, opts);
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> grads = {2 * (params[0] - 3), 2 * (params[1] + 1)};
    adam.Step(params, grads);
  }
  EXPECT_NEAR(params[0], 3.0, 1e-3);
  EXPECT_NEAR(params[1], -1.0, 1e-3);
}

TEST(AdamTest, GradientClipBoundsStep) {
  std::vector<double> params = {0.0};
  AdamOptimizer::Options opts;
  opts.learning_rate = 1.0;
  opts.gradient_clip = 1.0;
  AdamOptimizer adam(1, opts);
  std::vector<double> grads = {1e9};
  adam.Step(params, grads);
  // Clipped gradient yields a bounded first step (~lr).
  EXPECT_LT(std::fabs(params[0]), 2.0);
}

}  // namespace
}  // namespace qb5000

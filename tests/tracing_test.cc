// The scoped-span tracer (common/tracing.h): span recording on scope exit,
// per-thread nesting for parent links, bounded ring-buffer retention, the
// pluggable sink, and JSON export.
#include "common/tracing.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace qb5000 {
namespace {

TEST(Tracing, SpansRecordOnScopeExitPostOrder) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing is compiled out";
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "maintenance");
    EXPECT_TRUE(tracer.Snapshot().empty()) << "live spans are not visible";
    { ScopedSpan inner(&tracer, "maintenance/train"); }
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: the inner span ends first.
  EXPECT_EQ(spans[0].name, "maintenance/train");
  EXPECT_EQ(spans[1].name, "maintenance");
  EXPECT_EQ(spans[1].parent_id, 0u) << "outer span is a root";
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_GE(spans[0].start_seconds, spans[1].start_seconds);
  EXPECT_LE(spans[0].duration_seconds, spans[1].duration_seconds);
}

TEST(Tracing, NullTracerDisablesSpans) {
  // Instrumented code passes nullptr when tracing is off; must be inert.
  ScopedSpan span(nullptr, "nothing");
}

TEST(Tracing, RingBufferBoundsRetention) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing is compiled out";
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span(&tracer, "s" + std::to_string(i));
  }
  EXPECT_EQ(tracer.total_spans(), 10u);
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first, and only the newest four survive.
  EXPECT_EQ(spans.front().name, "s6");
  EXPECT_EQ(spans.back().name, "s9");

  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.total_spans(), 10u) << "lifetime total survives Clear";
}

class RecordingSink : public SpanSink {
 public:
  void OnSpanEnd(const SpanRecord& span) override {
    names.push_back(span.name);
  }
  std::vector<std::string> names;
};

TEST(Tracing, SinkSeesEverySpanEvenPastRingCapacity) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing is compiled out";
  Tracer tracer(/*capacity=*/2);
  RecordingSink sink;
  tracer.SetSink(&sink);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span(&tracer, "evt");
  }
  tracer.SetSink(nullptr);
  { ScopedSpan span(&tracer, "after-detach"); }
  EXPECT_EQ(sink.names, std::vector<std::string>(5, "evt"));
}

TEST(Tracing, ParentLinksAreCorrectAcrossConcurrentThreads) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing is compiled out";
  Tracer tracer(/*capacity=*/512);
  constexpr size_t kLanes = 4;
  ThreadPool pool(kLanes);
  pool.Run(kLanes, [&](size_t lane) {
    for (int i = 0; i < 8; ++i) {
      ScopedSpan outer(&tracer, "outer" + std::to_string(lane));
      ScopedSpan inner(&tracer, "inner" + std::to_string(lane));
    }
  });
  // Nesting is tracked per thread: every inner span's parent must be an
  // outer span from the SAME lane, never a concurrent other-lane span.
  std::map<uint64_t, std::string> by_id;
  for (const auto& span : tracer.Snapshot()) by_id[span.id] = span.name;
  size_t inner_seen = 0;
  for (const auto& span : tracer.Snapshot()) {
    if (span.name.rfind("inner", 0) != 0) continue;
    ++inner_seen;
    ASSERT_NE(span.parent_id, 0u);
    auto it = by_id.find(span.parent_id);
    ASSERT_NE(it, by_id.end());
    EXPECT_EQ(it->second, "outer" + span.name.substr(5));
  }
  EXPECT_EQ(inner_seen, kLanes * 8);
  EXPECT_EQ(tracer.total_spans(), kLanes * 8 * 2);
}

TEST(Tracing, ExportJsonShape) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing is compiled out";
  Tracer tracer;
  { ScopedSpan span(&tracer, "only"); }
  std::string json = tracer.ExportJson();
  EXPECT_EQ(json.rfind("{\"spans\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"only\""), std::string::npos) << json;
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace qb5000

#include <gtest/gtest.h>

#include "dbms/loader.h"
#include "tuning/index_advisor.h"
#include "workload/workload.h"

namespace qb5000 {
namespace {

dbms::Database MakeDb() {
  dbms::Database db;
  EXPECT_TRUE(db.CreateTable("orders", {{"order_id", true, 100000},
                                        {"customer_id", true, 5000},
                                        {"status", true, 5},
                                        {"total", true, 10000}})
                  .ok());
  dbms::Table* t = db.GetTable("orders");
  for (int i = 1; i <= 5000; ++i) {
    EXPECT_TRUE(t->Insert({int64_t{i}, int64_t{i % 5000 + 1},
                           int64_t{i % 5 + 1}, int64_t{i % 10000}})
                    .ok());
  }
  return db;
}

TEST(IndexAdvisorTest, RecommendsSelectiveColumn) {
  dbms::Database db = MakeDb();
  std::vector<AdvisorQuery> workload;
  auto q = IndexAdvisor::MakeQuery(
      "SELECT total FROM orders WHERE customer_id = 42", 100.0);
  ASSERT_TRUE(q.ok());
  workload.push_back(std::move(*q));
  auto rec = IndexAdvisor::Recommend(db, workload, 3);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->size(), 1u);
  EXPECT_EQ((*rec)[0], "orders.customer_id");
}

TEST(IndexAdvisorTest, WorksOnTemplatesWithPlaceholders) {
  dbms::Database db = MakeDb();
  std::vector<AdvisorQuery> workload;
  auto q = IndexAdvisor::MakeQuery(
      "SELECT total FROM orders WHERE customer_id = ?", 100.0);
  ASSERT_TRUE(q.ok());
  workload.push_back(std::move(*q));
  auto rec = IndexAdvisor::Recommend(db, workload, 3);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->size(), 1u);
  EXPECT_EQ((*rec)[0], "orders.customer_id");
}

TEST(IndexAdvisorTest, WeighsQueriesByVolume) {
  dbms::Database db = MakeDb();
  std::vector<AdvisorQuery> workload;
  auto hot = IndexAdvisor::MakeQuery(
      "SELECT total FROM orders WHERE customer_id = ?", 1000.0);
  auto cold = IndexAdvisor::MakeQuery(
      "SELECT total FROM orders WHERE order_id = ?", 1.0);
  ASSERT_TRUE(hot.ok() && cold.ok());
  workload.push_back(std::move(*hot));
  workload.push_back(std::move(*cold));
  auto rec = IndexAdvisor::Recommend(db, workload, 1);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->size(), 1u);
  EXPECT_EQ((*rec)[0], "orders.customer_id");
}

TEST(IndexAdvisorTest, SkipsUnselectiveAndExistingIndexes) {
  dbms::Database db = MakeDb();
  ASSERT_TRUE(db.CreateIndex("orders", "customer_id").ok());
  std::vector<AdvisorQuery> workload;
  auto q1 = IndexAdvisor::MakeQuery(
      "SELECT total FROM orders WHERE customer_id = ?", 100.0);
  // status has 5 distinct values over 5000 rows: an index barely helps, and
  // never re-recommend customer_id.
  auto q2 =
      IndexAdvisor::MakeQuery("SELECT total FROM orders WHERE status = ?", 1.0);
  ASSERT_TRUE(q1.ok() && q2.ok());
  workload.push_back(std::move(*q1));
  workload.push_back(std::move(*q2));
  auto rec = IndexAdvisor::Recommend(db, workload, 5);
  ASSERT_TRUE(rec.ok());
  for (const auto& index : *rec) {
    EXPECT_NE(index, "orders.customer_id");
  }
}

TEST(IndexAdvisorTest, WriteHeavyWorkloadGetsFewerIndexes) {
  dbms::Database db = MakeDb();
  std::vector<AdvisorQuery> workload;
  // Tiny read volume, huge write volume on the same table: index
  // maintenance cost should suppress the recommendation.
  auto read = IndexAdvisor::MakeQuery(
      "SELECT total FROM orders WHERE total = ?", 1.0);
  auto write = IndexAdvisor::MakeQuery(
      "INSERT INTO orders (customer_id, status, total) VALUES (?, ?, ?)",
      100000.0);
  ASSERT_TRUE(read.ok() && write.ok());
  workload.push_back(std::move(*read));
  workload.push_back(std::move(*write));
  auto rec = IndexAdvisor::Recommend(db, workload, 5);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->empty());
}

TEST(IndexAdvisorTest, GreedyOrdersByBenefit) {
  dbms::Database db = MakeDb();
  std::vector<AdvisorQuery> workload;
  auto big = IndexAdvisor::MakeQuery(
      "SELECT total FROM orders WHERE customer_id = ?", 500.0);
  auto small = IndexAdvisor::MakeQuery(
      "SELECT total FROM orders WHERE order_id = ?", 50.0);
  ASSERT_TRUE(big.ok() && small.ok());
  workload.push_back(std::move(*big));
  workload.push_back(std::move(*small));
  auto rec = IndexAdvisor::Recommend(db, workload, 5);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->size(), 2u);
  EXPECT_EQ((*rec)[0], "orders.customer_id");
  EXPECT_EQ((*rec)[1], "orders.order_id");
}

TEST(IndexAdvisorTest, RecommendationsSpeedUpRealWorkload) {
  // End-to-end: advise on BusTracker templates, build, measure.
  dbms::Database db;
  Rng rng(31);
  auto workload_def = MakeBusTracker();
  ASSERT_TRUE(dbms::LoadWorkloadSchema(db, workload_def, rng, 0.2).ok());

  std::vector<AdvisorQuery> advisor_input;
  for (const auto& stream : workload_def.streams()) {
    // Weight each template by its midday arrival rate, as the real
    // controller weights templates by forecast volume.
    double weight =
        std::max(0.1, stream.rate_per_minute(12 * kSecondsPerHour));
    auto q = IndexAdvisor::MakeQuery(stream.make_sql(rng), weight);
    ASSERT_TRUE(q.ok());
    advisor_input.push_back(std::move(*q));
  }
  auto before = IndexAdvisor::WorkloadCost(db, advisor_input, {});
  ASSERT_TRUE(before.ok());

  auto rec = IndexAdvisor::Recommend(db, advisor_input, 5);
  ASSERT_TRUE(rec.ok());
  ASSERT_FALSE(rec->empty());
  for (const auto& index : *rec) {
    auto dot = index.find('.');
    ASSERT_TRUE(db.CreateIndex(index.substr(0, dot), index.substr(dot + 1)).ok());
  }
  auto after = IndexAdvisor::WorkloadCost(db, advisor_input, {});
  ASSERT_TRUE(after.ok());
  EXPECT_LT(*after, *before * 0.8);

  // Real execution agrees with the estimate's direction.
  double slow = 0, fast = 0;
  Rng rng2(32);
  for (const auto& stream : workload_def.streams()) {
    auto exec = db.Execute(stream.make_sql(rng2));
    ASSERT_TRUE(exec.ok());
    fast += exec->latency_us;
  }
  dbms::Database plain;
  Rng rng3(31);
  ASSERT_TRUE(dbms::LoadWorkloadSchema(plain, workload_def, rng3, 0.2).ok());
  Rng rng4(32);
  for (const auto& stream : workload_def.streams()) {
    auto exec = plain.Execute(stream.make_sql(rng4));
    ASSERT_TRUE(exec.ok());
    slow += exec->latency_us;
  }
  EXPECT_LT(fast, slow);
}

}  // namespace
}  // namespace qb5000

// Memory-scale benchmark (DESIGN.md §15, ISSUE "Memory-scale arrival
// histories"): how far the compressed three-rung ArrivalHistory stretches
// template counts compared to the dense v1 representation, and where the
// sampled similarity probe overtakes the exact kd-tree.
//
// Two sweeps, template counts {10k, 100k, 1M} (QB_BENCH_FAST shrinks to
// {2k, 10k}):
//
//   history bytes  build N synthetic per-template histories (bursty minute
//                  traffic over 30 days, compacted like the service loop
//                  would), report the real compressed footprint
//                  (StorageBytes) and process RSS delta against a dense
//                  model of the same coverage. The dense model is
//                  tight-fit (capacity == size), i.e. it UNDERSTATES the
//                  dense footprint, so the reported ratios are
//                  conservative. At the smallest N the dense twin set is
//                  also actually materialized one-at-a-time and measured
//                  (HeapBytes) to anchor the model.
//
//   probe cost     clusterer state with K = N/200 centers restored under
//                  ProbeMode::kKdTree vs kSampled; measures index rebuild
//                  time, per-probe latency, and the agreement rate between
//                  the exact and sampled answers. The kAuto threshold
//                  (sampled_probe_template_threshold = 100000) is chosen
//                  from this sweep's crossover.
//
// Lines prefixed "#KV key value" are machine-readable; tools/bench_to_json.py
// collects them (plus the google-benchmark JSON) into BENCH_memory.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "clusterer/online_clusterer.h"
#include "common/clock.h"
#include "common/io.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "preprocessor/arrival_history.h"
#include "preprocessor/history_spill.h"

using namespace qb5000;

namespace {

constexpr Timestamp kSpan = 30 * kSecondsPerDay;

/// VmRSS in bytes (0 when /proc is unavailable).
size_t CurrentRssBytes() {
  auto status = ReadFileToString(nullptr, "/proc/self/status");
  if (!status.ok()) return 0;
  size_t pos = status->find("VmRSS:");
  if (pos == std::string::npos) return 0;
  return static_cast<size_t>(
             std::strtoll(status->c_str() + pos + 6, nullptr, 10)) *
         1024;
}

/// The synthetic per-template schedule: bursts of consecutive minutes with
/// hour-scale gaps, 30-200 recorded buckets spread over the 30-day span —
/// the bursty, mostly-idle shape real template traffic has.
struct Burst {
  Timestamp start = 0;
  int buckets = 0;
};

std::vector<Burst> MakeSchedule(uint64_t template_index, Rng& rng) {
  (void)template_index;
  std::vector<Burst> bursts;
  Timestamp t = rng.UniformInt(0, 5 * kSecondsPerDay);
  int remaining = static_cast<int>(rng.UniformInt(30, 200));
  while (remaining > 0 && t < kSpan - kSecondsPerHour) {
    int burst = static_cast<int>(
        std::min<int64_t>(remaining, rng.UniformInt(5, 30)));
    bursts.push_back({t, burst});
    remaining -= burst;
    t += burst * kSecondsPerMinute +
         rng.UniformInt(1, 600) * kSecondsPerMinute;
  }
  return bursts;
}

double NextCount(Rng& rng) { return static_cast<double>(rng.UniformInt(1, 30)); }

/// Builds one compressed history from a schedule, compacted the way the
/// maintenance loop would leave it (minute rung holds only the last day).
void FillHistory(const std::vector<Burst>& bursts, uint64_t seed,
                 bool archive_rung, ArrivalHistory* h) {
  Rng rng(seed);
  for (const Burst& b : bursts) {
    Timestamp t = b.start;
    for (int i = 0; i < b.buckets; ++i, t += kSecondsPerMinute) {
      h->Record(t, NextCount(rng));
    }
  }
  h->Compact(kSpan - kSecondsPerDay);
  if (archive_rung) h->CompactArchive(kSpan - 7 * kSecondsPerDay);
}

/// Tight-fit dense model of the same post-compaction coverage: the v1
/// representation held one double per minute bucket from the recent rung's
/// start to its end plus one per archive hour (and per day where the daily
/// rung applies). Uses exact spans, capacity == size — a floor on what
/// dense would really allocate.
size_t DenseModelBytes(const ArrivalHistory& h) {
  size_t buckets = 0;
  // Span bounds are cheap (cached scalars); rung windows are not needed —
  // dense storage is one slot per covered bucket regardless of value.
  Timestamp first = h.FirstTime();
  if (first == 0 && h.Total() == 0.0) return 2 * sizeof(TimeSeries);
  Timestamp recent_start = kSpan - kSecondsPerDay;  // compaction cutoff
  Timestamp end = std::max(h.last_arrival() + kSecondsPerMinute, recent_start);
  if (end > recent_start) {
    buckets += static_cast<size_t>((end - recent_start) / kSecondsPerMinute);
  }
  if (first < recent_start) {
    buckets += static_cast<size_t>(
        (AlignDown(recent_start + kSecondsPerHour - 1, kSecondsPerHour) -
         AlignDown(first, kSecondsPerHour)) /
        kSecondsPerHour);
  }
  return buckets * sizeof(double) + 2 * sizeof(TimeSeries);
}

/// Actually materializes the dense twin (minute vector over the recent
/// span, hour vector over the archive span) and returns its HeapBytes —
/// the anchor measurement for DenseModelBytes.
size_t DenseMeasuredBytes(const ArrivalHistory& h) {
  Timestamp first = h.FirstTime();
  if (first == 0 && h.Total() == 0.0) return 2 * sizeof(TimeSeries);
  Timestamp recent_start = kSpan - kSecondsPerDay;
  Timestamp end = std::max(h.last_arrival() + kSecondsPerMinute, recent_start);
  TimeSeries recent(recent_start, kSecondsPerMinute);
  if (end > recent_start) {
    recent.Reset(recent_start, kSecondsPerMinute,
                 static_cast<size_t>((end - recent_start) / kSecondsPerMinute));
  }
  TimeSeries archive(AlignDown(first, kSecondsPerHour), kSecondsPerHour);
  if (first < recent_start) {
    archive.Reset(AlignDown(first, kSecondsPerHour), kSecondsPerHour,
                  static_cast<size_t>(
                      (AlignDown(recent_start + kSecondsPerHour - 1,
                                 kSecondsPerHour) -
                       AlignDown(first, kSecondsPerHour)) /
                      kSecondsPerHour));
  }
  return recent.HeapBytes() + archive.HeapBytes() + 2 * sizeof(TimeSeries);
}

struct HistorySweepResult {
  size_t templates = 0;
  size_t compressed_bytes = 0;
  size_t dense_model_bytes = 0;
  size_t rss_delta_bytes = 0;
  double build_seconds = 0.0;
  size_t spill_resident_bytes = 0;
  size_t spill_file_bytes = 0;
};

HistorySweepResult RunHistorySweep(size_t templates, bool with_spill) {
  HistorySweepResult r;
  r.templates = templates;
  size_t rss_before = CurrentRssBytes();
  Stopwatch watch;
  std::vector<ArrivalHistory> histories(templates);
  for (size_t i = 0; i < templates; ++i) {
    Rng rng(0x486973746f727921ULL ^ i);
    auto schedule = MakeSchedule(i, rng);
    FillHistory(schedule, 0xC0FFEE ^ i, /*archive_rung=*/i % 3 == 0,
                &histories[i]);
  }
  r.build_seconds = watch.ElapsedSeconds();
  for (const auto& h : histories) {
    r.compressed_bytes += h.StorageBytes();
    r.dense_model_bytes += DenseModelBytes(h);
  }
  r.rss_delta_bytes = CurrentRssBytes() - rss_before;

  if (with_spill) {
    HistorySpillStore store(nullptr, "/tmp/qb5000_bench_memory_spill.bin");
    if (store.Open().ok()) {
      for (auto& h : histories) {
        // Full compaction first: only minute-empty histories may spill.
        h.Compact(kSpan + kSecondsPerDay);
        if (h.SpillEligible()) (void)h.Spill(&store);
      }
      for (const auto& h : histories) {
        r.spill_resident_bytes += h.StorageBytes();
      }
      r.spill_file_bytes = store.file_bytes() + store.index_bytes();
    }
  }
  return r;
}

// --- probe sweep ------------------------------------------------------------

OnlineClusterer MakeClusterer(OnlineClusterer::ProbeMode mode, size_t clusters,
                              MetricsRegistry* metrics) {
  OnlineClusterer::Options options;
  options.probe_mode = mode;
  options.metrics = metrics;
  OnlineClusterer clusterer(options);

  Rng rng(0x50726f6265ULL);
  std::map<ClusterId, OnlineClusterer::Cluster> state;
  for (size_t k = 0; k < clusters; ++k) {
    OnlineClusterer::Cluster c;
    c.id = static_cast<ClusterId>(k + 1);
    c.center.resize(288);
    for (double& v : c.center) {
      v = static_cast<double>(rng.UniformInt(0, 40));
    }
    c.members.insert(static_cast<TemplateId>(k + 1));
    c.volume = 1.0;
    state.emplace(c.id, std::move(c));
  }
  Status st = clusterer.RestoreState(std::move(state),
                                     static_cast<ClusterId>(clusters + 1), 0);
  if (!st.ok()) std::fprintf(stderr, "RestoreState: %s\n", st.ToString().c_str());
  return clusterer;
}

std::vector<ArrivalRateFeature::Feature> MakeProbes(size_t n,
                                                    size_t clusters) {
  // Half the probes are perturbed copies of real centers (a near-match
  // exists), half are fresh noise (usually no match above rho) — both
  // sides of the assignment decision get timed.
  Rng rng(0x46656174ULL);
  Rng centers(0x50726f6265ULL);
  std::vector<std::vector<double>> center_values(clusters);
  for (size_t k = 0; k < clusters; ++k) {
    center_values[k].resize(288);
    for (double& v : center_values[k]) {
      v = static_cast<double>(centers.UniformInt(0, 40));
    }
  }
  std::vector<ArrivalRateFeature::Feature> probes(n);
  for (size_t i = 0; i < n; ++i) {
    probes[i].values.resize(288);
    if (i % 2 == 0 && clusters > 0) {
      const auto& base =
          center_values[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(clusters) - 1))];
      for (size_t d = 0; d < 288; ++d) {
        probes[i].values[d] = base[d] + static_cast<double>(
                                            rng.UniformInt(0, 4)) -
                              2.0;
        probes[i].values[d] = std::max(0.0, probes[i].values[d]);
      }
    } else {
      for (double& v : probes[i].values) {
        v = static_cast<double>(rng.UniformInt(0, 40));
      }
    }
  }
  return probes;
}

struct ProbeSweepResult {
  size_t templates = 0;
  size_t clusters = 0;
  double kd_rebuild_ms = 0.0;
  double sampled_rebuild_ms = 0.0;
  double kd_probe_us = 0.0;
  double sampled_probe_us = 0.0;
  double agreement = 1.0;
};

ProbeSweepResult RunProbeSweep(size_t templates) {
  ProbeSweepResult r;
  r.templates = templates;
  r.clusters = std::max<size_t>(16, templates / 200);
  MetricsRegistry metrics;
  constexpr size_t kProbes = 256;
  auto probes = MakeProbes(kProbes, r.clusters);

  Stopwatch watch;
  OnlineClusterer kd =
      MakeClusterer(OnlineClusterer::ProbeMode::kKdTree, r.clusters, &metrics);
  r.kd_rebuild_ms = watch.ElapsedSeconds() * 1e3;
  watch.Restart();
  OnlineClusterer sampled =
      MakeClusterer(OnlineClusterer::ProbeMode::kSampled, r.clusters, &metrics);
  r.sampled_rebuild_ms = watch.ElapsedSeconds() * 1e3;

  std::vector<ClusterId> kd_answers(kProbes), sampled_answers(kProbes);
  watch.Restart();
  for (size_t i = 0; i < kProbes; ++i) {
    kd_answers[i] = kd.ProbeBest(probes[i]);
  }
  r.kd_probe_us = watch.ElapsedSeconds() * 1e6 / kProbes;
  watch.Restart();
  for (size_t i = 0; i < kProbes; ++i) {
    sampled_answers[i] = sampled.ProbeBest(probes[i]);
  }
  r.sampled_probe_us = watch.ElapsedSeconds() * 1e6 / kProbes;

  size_t agree = 0;
  for (size_t i = 0; i < kProbes; ++i) {
    if (kd_answers[i] == sampled_answers[i]) ++agree;
  }
  r.agreement = static_cast<double>(agree) / kProbes;
  return r;
}

// --- report -----------------------------------------------------------------

void ReportSummary() {
  bench::PrintHeader("Memory-scale arrival histories",
                     "compressed tiered storage + sampled similarity "
                     "(DESIGN.md §15)");
  bool fast = bench::FastMode();
  std::vector<size_t> sweep =
      fast ? std::vector<size_t>{2'000, 10'000}
           : std::vector<size_t>{10'000, 100'000, 1'000'000};

  // Anchor: materialize the dense twins at the smallest N and compare the
  // tight-fit model against real vector allocations.
  {
    size_t n = sweep.front() / 2;
    size_t model = 0, measured = 0;
    for (size_t i = 0; i < n; ++i) {
      Rng rng(0x486973746f727921ULL ^ i);
      auto schedule = MakeSchedule(i, rng);
      ArrivalHistory h;
      FillHistory(schedule, 0xC0FFEE ^ i, i % 3 == 0, &h);
      model += DenseModelBytes(h);
      measured += DenseMeasuredBytes(h);
    }
    std::printf("#KV dense_anchor_templates %zu\n", n);
    std::printf("#KV dense_anchor_model_bytes %zu\n", model);
    std::printf("#KV dense_anchor_measured_bytes %zu\n", measured);
    std::printf(
        "dense model anchor (%zu templates): model %.1f MB vs measured "
        "%.1f MB (model/measured %.3f)\n",
        n, model / 1048576.0, measured / 1048576.0,
        static_cast<double>(model) / static_cast<double>(measured));
  }

  std::vector<HistorySweepResult> history_results;
  for (size_t i = 0; i < sweep.size(); ++i) {
    size_t n = sweep[i];
    bool with_spill = i + 1 == sweep.size();
    HistorySweepResult r = RunHistorySweep(n, with_spill);
    history_results.push_back(r);
    std::printf("#KV history_templates_%zu %zu\n", n, n);
    std::printf("#KV compressed_bytes_%zu %zu\n", n, r.compressed_bytes);
    std::printf("#KV dense_model_bytes_%zu %zu\n", n, r.dense_model_bytes);
    std::printf("#KV dense_over_compressed_%zu %.2f\n", n,
                static_cast<double>(r.dense_model_bytes) /
                    static_cast<double>(r.compressed_bytes));
    std::printf("#KV rss_delta_mb_%zu %.1f\n", n,
                r.rss_delta_bytes / 1048576.0);
    std::printf("#KV history_build_seconds_%zu %.2f\n", n, r.build_seconds);
    std::printf(
        "histories n=%zu: compressed %.1f MB (rss delta %.1f MB), dense "
        "model %.1f MB -> %.1fx, built in %.1fs\n",
        n, r.compressed_bytes / 1048576.0, r.rss_delta_bytes / 1048576.0,
        r.dense_model_bytes / 1048576.0,
        static_cast<double>(r.dense_model_bytes) /
            static_cast<double>(r.compressed_bytes),
        r.build_seconds);
    if (with_spill) {
      std::printf("#KV spill_resident_bytes_%zu %zu\n", n,
                  r.spill_resident_bytes);
      std::printf("#KV spill_file_bytes_%zu %zu\n", n, r.spill_file_bytes);
      std::printf(
          "spill n=%zu: resident stubs %.1f MB, spill file + index %.1f "
          "MB\n",
          n, r.spill_resident_bytes / 1048576.0,
          r.spill_file_bytes / 1048576.0);
    }
  }

  // Acceptance: 10x the templates at < 2x the dense history bytes.
  if (history_results.size() >= 2) {
    const auto& big = history_results.back();
    const auto& ref = history_results[history_results.size() - 2];
    double ratio = static_cast<double>(big.compressed_bytes) /
                   static_cast<double>(ref.dense_model_bytes);
    std::printf("#KV compressed_%zu_over_dense_%zu %.2f\n", big.templates,
                ref.templates, ratio);
    std::printf(
        "acceptance: compressed@%zu = %.2fx dense@%zu history bytes "
        "(target < 2.0)\n",
        big.templates, ratio, ref.templates);
  }

  for (size_t n : sweep) {
    ProbeSweepResult r = RunProbeSweep(n);
    const char* winner =
        r.sampled_probe_us + r.sampled_rebuild_ms * 1e3 / 256 <
                r.kd_probe_us + r.kd_rebuild_ms * 1e3 / 256
            ? "sampled"
            : "kdtree";
    std::printf("#KV probe_clusters_%zu %zu\n", n, r.clusters);
    std::printf("#KV kd_rebuild_ms_%zu %.2f\n", n, r.kd_rebuild_ms);
    std::printf("#KV sampled_rebuild_ms_%zu %.2f\n", n, r.sampled_rebuild_ms);
    std::printf("#KV kd_probe_us_%zu %.1f\n", n, r.kd_probe_us);
    std::printf("#KV sampled_probe_us_%zu %.1f\n", n, r.sampled_probe_us);
    std::printf("#KV probe_agreement_%zu %.3f\n", n, r.agreement);
    std::printf("#KV probe_winner_%zu %s\n", n, winner);
    std::printf(
        "probe n=%zu (K=%zu): kd rebuild %.1f ms + %.1f us/probe, sampled "
        "rebuild %.1f ms + %.1f us/probe, agreement %.1f%% -> %s\n",
        n, r.clusters, r.kd_rebuild_ms, r.kd_probe_us, r.sampled_rebuild_ms,
        r.sampled_probe_us, 100.0 * r.agreement, winner);
  }
}

// --- google-benchmark smoke microbenches ------------------------------------

void BM_CompressedRecord(benchmark::State& state) {
  // Steady-state Record throughput into one compressed history (append
  // path, bursty schedule).
  Rng rng(1);
  auto schedule = MakeSchedule(0, rng);
  for (auto _ : state) {
    ArrivalHistory h;
    Rng counts(2);
    size_t records = 0;
    for (const Burst& b : schedule) {
      Timestamp t = b.start;
      for (int i = 0; i < b.buckets; ++i, t += kSecondsPerMinute) {
        h.Record(t, NextCount(counts));
        ++records;
      }
    }
    benchmark::DoNotOptimize(h);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(records));
  }
}
BENCHMARK(BM_CompressedRecord);

void BM_ProbeKdTree(benchmark::State& state) {
  MetricsRegistry metrics;
  size_t clusters = static_cast<size_t>(state.range(0));
  OnlineClusterer clusterer =
      MakeClusterer(OnlineClusterer::ProbeMode::kKdTree, clusters, &metrics);
  auto probes = MakeProbes(64, clusters);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clusterer.ProbeBest(probes[i++ % probes.size()]));
  }
}
BENCHMARK(BM_ProbeKdTree)->Arg(512);

void BM_ProbeSampled(benchmark::State& state) {
  MetricsRegistry metrics;
  size_t clusters = static_cast<size_t>(state.range(0));
  OnlineClusterer clusterer =
      MakeClusterer(OnlineClusterer::ProbeMode::kSampled, clusters, &metrics);
  auto probes = MakeProbes(64, clusters);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clusterer.ProbeBest(probes[i++ % probes.size()]));
  }
}
BENCHMARK(BM_ProbeSampled)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ReportSummary();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Figure 8: Prediction Results — actual vs predicted arrival rates for the
// highest-volume BusTracker cluster at 1-hour and 1-week horizons. Both
// horizons are scored over the SAME target dates (the final third of the
// trace) so the comparison isolates horizon difficulty: the 1-hour
// predictions should hug the actual curve, 1-week ones track the shape
// with visibly more error.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"
#include "math/stats.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

Matrix SubMatrix(const Matrix& m, size_t rows) {
  Matrix out(rows, m.cols());
  for (size_t i = 0; i < rows; ++i) out.SetRow(i, m.Row(i));
  return out;
}

}  // namespace

int main() {
  PrintHeader("Figure 8: Prediction Results (BusTracker)",
              "Figure 8 (1-hour vs 1-week horizon, largest cluster)");
  int days = FastMode() ? 21 : 35;
  auto prepared = Prepare(MakeBusTracker(), days, 10 * kSecondsPerMinute);
  auto series = TopClusterSeries(prepared, /*coverage=*/0.0, 1, kSecondsPerHour,
                                 0, prepared.end);
  if (series.empty()) {
    std::printf("no clusters\n");
    return 1;
  }
  const size_t kWindow = 24;
  // Common evaluation range: targets in the final third of the trace.
  size_t total_hours = series[0].size();
  size_t eval_target_from = total_hours - total_hours / 3;

  ModelOptions opts;
  opts.num_series = 1;
  if (FastMode()) {
    opts.hidden_dim = 10;
    opts.embedding_dim = 8;
    opts.num_layers = 1;
    opts.max_epochs = 12;
  } else {
    opts.max_epochs = 40;
  }
  for (int horizon_hours : {1, 168}) {
    size_t h = static_cast<size_t>(horizon_hours);
    auto dataset = BuildDataset(series, kWindow, h);
    if (!dataset.ok()) {
      std::printf("horizon %d h failed: %s\n", horizon_hours,
                  dataset.status().ToString().c_str());
      continue;
    }
    // Row i targets hour index i + kWindow + h - 1.
    size_t n = dataset->x.rows();
    size_t first_test_row = eval_target_from >= kWindow + h - 1
                                ? eval_target_from - kWindow - h + 1
                                : 0;
    if (first_test_row < 8 || first_test_row >= n) {
      std::printf("horizon %d h: not enough data\n", horizon_hours);
      continue;
    }
    auto lr = std::make_shared<LinearRegressionModel>(opts);
    auto rnn = std::make_shared<RnnModel>(opts);
    if (!lr->Fit(SubMatrix(dataset->x, first_test_row),
                 SubMatrix(dataset->y, first_test_row))
             .ok() ||
        !rnn->Fit(SubMatrix(dataset->x, first_test_row),
                  SubMatrix(dataset->y, first_test_row))
             .ok()) {
      std::printf("horizon %d h: fit failed\n", horizon_hours);
      continue;
    }
    EnsembleModel model(lr, rnn);
    std::vector<double> actual, predicted;
    for (size_t i = first_test_row; i < n; ++i) {
      auto p = model.Predict(dataset->x.Row(i));
      if (!p.ok()) break;
      predicted.push_back(
          std::max(0.0, std::expm1(std::min((*p)[0], 50.0))));
      actual.push_back(std::expm1(dataset->y(i, 0)));
    }
    Vector av(actual.begin(), actual.end());
    Vector pv(predicted.begin(), predicted.end());
    std::printf("\n-- %d-hour horizon (log MSE %.2f over the common range) --\n",
                horizon_hours, LogSpaceMse(av, pv));
    PrintSparkline("actual q/h", actual);
    PrintSparkline("predicted q/h", predicted);
    PrintSeriesRow("fig8_actual_h" + std::to_string(horizon_hours), actual, 0);
    PrintSeriesRow("fig8_predicted_h" + std::to_string(horizon_hours), predicted,
                   0);
  }
  std::printf("\npaper shape: both horizons track the daily cycles; the\n"
              "1-hour horizon is visibly tighter than the 1-week horizon.\n");
  return 0;
}

#pragma once

#include <string>

#include "common/clock.h"
#include "workload/workload.h"

namespace qb5000::bench {

/// Configuration for the Section 7.6/7.7 index-selection experiment: three
/// copies of the same database run the same accelerated workload replay
/// while different controllers choose their secondary indexes.
///
///  * AUTO        — QB5000 forecasts (arrival-rate clusters) drive an
///                  AutoAdmin-style advisor; one build step per hour.
///  * STATIC      — the same advisor over a fixed historical workload
///                  sample; all indexes built before the run.
///  * AUTO-LOGICAL— like AUTO but clustering on logical features (7.7).
struct IndexExperimentOptions {
  Timestamp t0 = 0;       ///< experiment start on the trace timeline
  int hours = 16;         ///< experiment length (accelerated replay)
  size_t total_indexes = 6;  ///< index budget per controller (paper: 20;
                             ///< scaled to our smaller schemas)
  double row_scale = 0.3;    ///< table size scale for the mini-DBMS
  double replay_scale = 0.01;  ///< volume scale for measured replay
  uint64_t seed = 77;
  double logical_rho = 0.3;  ///< threshold for the logical-feature clusterer
};

/// Runs the experiment and prints per-hour throughput and p99 latency for
/// the three controllers, plus the final index sets. Returns 0 on success.
int RunIndexSelectionExperiment(const SyntheticWorkload& workload,
                                const IndexExperimentOptions& options);

}  // namespace qb5000::bench

#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/finite.h"

namespace qb5000::bench {

bool FastMode() {
  const char* env = std::getenv("QB_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  if (FastMode()) std::printf("(QB_BENCH_FAST=1: reduced scale)\n");
  std::printf("==============================================================\n");
}

void PrintSparkline(const std::string& label, std::span<const double> values) {
  static const char* kBars[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  double peak = 0;
  for (double v : values) {
    if (IsFinite(v)) peak = std::max(peak, v);
  }
  std::printf("%-24s ", label.c_str());
  for (double v : values) {
    int level = 0;
    if (IsFinite(v) && peak > 0) {
      level = std::clamp(static_cast<int>(8.0 * v / peak), 0, 8);
    } else if (!IsFinite(v)) {
      level = 8;
    }
    std::printf("%s", kBars[level]);
  }
  std::printf("  (peak %.0f)\n", peak);
}

void PrintSeriesRow(const std::string& name, std::span<const double> values,
                    int precision) {
  std::printf("%s", name.c_str());
  for (double v : values) std::printf(", %.*f", precision, v);
  std::printf("\n");
}

PreparedWorkload Prepare(SyntheticWorkload workload, int days,
                         int64_t step_seconds, double rho,
                         int feature_window_days) {
  OnlineClusterer::Options opts;
  opts.rho = rho;
  opts.feature.num_samples = FastMode() ? 128 : 512;
  opts.feature.window_seconds = feature_window_days * kSecondsPerDay;
  PreparedWorkload out{std::move(workload), PreProcessor(),
                       OnlineClusterer(opts),
                       static_cast<Timestamp>(days) * kSecondsPerDay};
  out.workload.FeedAggregated(out.pre, 0, out.end, step_seconds, 1).ok();
  out.clusterer.Update(out.pre, out.end);
  return out;
}

std::vector<TimeSeries> TopClusterSeries(const PreparedWorkload& prepared,
                                         double coverage, size_t max_clusters,
                                         int64_t interval_seconds,
                                         Timestamp from, Timestamp to) {
  auto top = prepared.clusterer.TopClustersByVolume(max_clusters);
  double total = prepared.clusterer.TotalVolume();
  std::vector<TimeSeries> series;
  double covered = 0;
  for (ClusterId id : top) {
    auto center = prepared.clusterer.CenterSeries(prepared.pre, id,
                                                  interval_seconds, from, to);
    if (!center.ok()) continue;
    series.push_back(std::move(*center));
    covered += prepared.clusterer.clusters().at(id).volume;
    if (total > 0 && covered / total >= coverage) break;
  }
  return series;
}

TimeSeries TotalSeries(const PreProcessor& pre, int64_t interval_seconds,
                       Timestamp from, Timestamp to) {
  TimeSeries total(AlignDown(from, interval_seconds), interval_seconds);
  bool first = true;
  for (TemplateId id : pre.TemplateIds()) {
    const auto* info = pre.GetTemplate(id);
    if (info == nullptr) continue;
    auto series = info->history.Series(interval_seconds, from, to);
    if (!series.ok()) continue;
    if (first) {
      total = std::move(*series);
      first = false;
    } else {
      total.AddSeries(*series).ok();
    }
  }
  return total;
}

}  // namespace qb5000::bench

// Figure 12: Index Selection (PostgreSQL / BusTracker) — same experiment
// as Figure 11 on the cyclic BusTracker workload. Because this workload's
// mix is stable, AUTO and STATIC converge to nearly the same index set and
// final performance (the paper observes they differ by one index), while
// AUTO-LOGICAL again trails.
#include "bench_util.h"
#include "index_experiment.h"

using namespace qb5000;
using namespace qb5000::bench;

int main() {
  PrintHeader("Figure 12: Index Selection (BusTracker / 'PostgreSQL')",
              "Figure 12 (AUTO vs STATIC vs AUTO-LOGICAL)");
  IndexExperimentOptions options;
  // A plain weekday after 4 weeks of history, starting at 07:00 so the
  // controller's first recent-volume ranking reflects the rider workload
  // it will be measured on (not the overnight ingest-only mix).
  options.t0 = 28 * kSecondsPerDay + 7 * kSecondsPerHour;
  options.hours = FastMode() ? 8 : 16;
  options.total_indexes = 6;
  options.row_scale = FastMode() ? 0.1 : 0.25;
  options.replay_scale = FastMode() ? 0.002 : 0.005;
  options.seed = 502;
  return RunIndexSelectionExperiment(MakeBusTracker({.seed = 7}), options);
}

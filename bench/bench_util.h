#pragma once

#include <span>
#include <string>
#include <vector>

#include "clusterer/online_clusterer.h"
#include "common/timeseries.h"
#include "preprocessor/preprocessor.h"
#include "workload/workload.h"

namespace qb5000::bench {

/// True when QB_BENCH_FAST=1: benches shrink trace lengths and model sizes
/// so the whole suite smoke-runs quickly.
bool FastMode();

/// Prints a standard bench banner with the paper artifact being reproduced.
void PrintHeader(const std::string& title, const std::string& paper_ref);

/// Renders `values` as a unicode bar sparkline with a label and peak note.
void PrintSparkline(const std::string& label, std::span<const double> values);

/// Prints "name, v0, v1, ..." rows for machine-readable series output.
void PrintSeriesRow(const std::string& name, std::span<const double> values,
                    int precision = 1);

/// A workload fed through the Pre-Processor with a clusterer updated at
/// `end` (single pass; benches needing daily updates drive their own loop).
struct PreparedWorkload {
  SyntheticWorkload workload;
  PreProcessor pre;
  OnlineClusterer clusterer;
  Timestamp end = 0;
};

/// Feeds `days` of the workload at `step_seconds` and runs one clustering
/// pass at the end. `feature_window_days` bounds the similarity window.
PreparedWorkload Prepare(SyntheticWorkload workload, int days,
                         int64_t step_seconds, double rho = 0.8,
                         int feature_window_days = 7);

/// Aligned hourly (or other interval) center series for the top clusters
/// covering >= `coverage` of volume (at most `max_clusters`).
std::vector<TimeSeries> TopClusterSeries(const PreparedWorkload& prepared,
                                         double coverage, size_t max_clusters,
                                         int64_t interval_seconds,
                                         Timestamp from, Timestamp to);

/// Sums all templates' arrival series into one total-volume series.
TimeSeries TotalSeries(const PreProcessor& pre, int64_t interval_seconds,
                       Timestamp from, Timestamp to);

}  // namespace qb5000::bench

// Figure 1: Workload Patterns — (a) BusTracker's 72-hour diurnal cycles,
// (b) Admissions' growth + spike in the week before a deadline, and
// (c) MOOC's accumulating distinct-template count around a feature release.
#include <cstdio>

#include "bench_util.h"

using namespace qb5000;
using namespace qb5000::bench;

int main() {
  PrintHeader("Figure 1: Workload Patterns", "Figure 1 (a)(b)(c)");

  // (a) BusTracker: queries per hour over 72 weekday hours.
  {
    PreProcessor pre;
    auto workload = MakeBusTracker();
    workload.FeedAggregated(pre, 0, 3 * kSecondsPerDay, 10 * kSecondsPerMinute, 1)
        .ok();
    TimeSeries total = TotalSeries(pre, kSecondsPerHour, 0, 3 * kSecondsPerDay);
    std::printf("\n(a) Cycles (BusTracker), 72 h, queries/hour:\n");
    PrintSparkline("bustracker q/h", total.values());
    PrintSeriesRow("fig1a_bustracker_qph", total.values(), 0);
  }

  // (b) Admissions: the week leading into the Dec-15-style deadline
  // (day 348), queries per hour.
  {
    PreProcessor pre;
    auto workload = MakeAdmissions();
    Timestamp from = 341 * kSecondsPerDay;
    Timestamp to = 349 * kSecondsPerDay;
    workload.FeedAggregated(pre, from, to, 10 * kSecondsPerMinute, 2).ok();
    TimeSeries total = TotalSeries(pre, kSecondsPerHour, from, to);
    std::printf("\n(b) Growth and Spikes (Admissions), deadline week, queries/hour:\n");
    PrintSparkline("admissions q/h", total.values());
    PrintSeriesRow("fig1b_admissions_qph", total.values(), 0);
  }

  // (c) MOOC: cumulative distinct templates, daily, across the release.
  {
    PreProcessor pre;
    auto workload = MakeMooc();
    int days = FastMode() ? 60 : 90;
    std::vector<double> cumulative;
    for (int day = 0; day < days; ++day) {
      workload
          .FeedAggregated(pre, static_cast<Timestamp>(day) * kSecondsPerDay,
                          static_cast<Timestamp>(day + 1) * kSecondsPerDay,
                          kSecondsPerHour, 3)
          .ok();
      cumulative.push_back(static_cast<double>(pre.num_templates()));
    }
    std::printf("\n(c) Workload Evolution (MOOC), cumulative distinct templates per day\n");
    std::printf("    (new release at day 45):\n");
    PrintSparkline("mooc templates", cumulative);
    PrintSeriesRow("fig1c_mooc_templates", cumulative, 0);
  }
  return 0;
}

// Always-on service benchmarks (DESIGN.md §14): what ingest throughput and
// forecast latency actually cost once the controller runs as a service —
// producers enqueue into the bounded MPSC ring, a background thread drains,
// trains, and writes incremental checkpoints, and Forecast reads the
// epoch-swapped snapshot. The acceptance bars (tracked in EXPERIMENTS.md):
// sustained enqueue throughput within 5% of the standalone service (no
// training, no checkpointing) while maintenance and delta checkpoints run
// continuously, and bounded Forecast p99 inside the PR 7 budget serving the
// full rung — the ladder should no longer fire on retrains, only on true
// overload.
//
// Caveat for committed results: on a single-core CI host the producer, the
// background drain thread, and the forecast reader time-share one hardware
// thread, so the "concurrent" run measures scheduler interleaving on top of
// the queue hand-off and the ratio can land well under multi-core numbers.
// The #KV lines record the host parallelism next to every headline figure,
// as in bench_resilience.
//
// Lines prefixed "#KV key value" are machine-readable; tools/bench_to_json.py
// collects them (plus the google-benchmark JSON) into BENCH_service.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/qb5000.h"

using namespace qb5000;

namespace {

constexpr size_t kDistinct = 64;
constexpr size_t kBatch = 64;
constexpr double kBudgetSeconds = 0.001;  // the PR 7 bounded-forecast budget

/// Same repeat-heavy statement mix as bench_ingest (point lookups,
/// updates, a join tail) so the service numbers are comparable with the
/// synchronous ingest-path numbers.
std::string MakeStatement(size_t t, Rng& rng) {
  std::string tbl = std::to_string(t);
  switch (t % 4) {
    case 0:
      return "SELECT * FROM orders_" + tbl +
             " WHERE id = " + std::to_string(rng.UniformInt(1, 100000));
    case 1:
      return "SELECT status, total FROM orders_" + tbl +
             " WHERE customer_id = " +
             std::to_string(rng.UniformInt(1, 100000)) + " AND region = 'r" +
             std::to_string(rng.UniformInt(1, 8)) + "'";
    case 2:
      return "UPDATE orders_" + tbl + " SET status = 's" +
             std::to_string(rng.UniformInt(1, 5)) +
             "' WHERE id = " + std::to_string(rng.UniformInt(1, 100000));
    default:
      return "SELECT o.id, o.total, c.name FROM orders_" + tbl +
             " o JOIN customers c ON o.customer_id = c.id WHERE o.region = "
             "'r" +
             std::to_string(rng.UniformInt(1, 8)) + "' AND o.total > " +
             std::to_string(rng.UniformInt(1, 10000)) +
             " ORDER BY o.ts DESC LIMIT 50";
  }
}

std::vector<std::string> MakeTrace(size_t n, size_t variants, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> pool;
  pool.reserve(kDistinct * variants);
  for (size_t t = 0; t < kDistinct; ++t) {
    for (size_t v = 0; v < variants; ++v) pool.push_back(MakeStatement(t, rng));
  }
  std::vector<std::string> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(pool[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))]);
  }
  return trace;
}

QueryBot5000::Config ServiceConfig(Timestamp maintenance_period) {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour};
  config.maintenance_period_seconds = maintenance_period;
  return config;
}

/// Enqueues `trace` in kBatch-sized chunks, each batch `ts_step` seconds
/// after the previous, retrying kOverloaded with a yield (the documented
/// caller policy). Returns the producer-side wall seconds including the
/// final drain-to-empty.
double FeedTimed(QueryBot5000& bot, const std::vector<std::string>& trace,
                 Timestamp ts_start, Timestamp ts_step) {
  std::vector<QueryArrival> batch;
  batch.reserve(kBatch);
  Timestamp ts = ts_start;
  Stopwatch timer;
  for (size_t i = 0; i < trace.size(); i += kBatch) {
    batch.clear();
    size_t end = std::min(trace.size(), i + kBatch);
    for (size_t j = i; j < end; ++j) batch.push_back({trace[j], ts, 1.0});
    while (true) {
      Status st = bot.EnqueueBatch(batch);
      if (st.ok()) break;
      std::this_thread::yield();
    }
    ts += ts_step;
  }
  bot.DrainForTest();
  return timer.ElapsedSeconds();
}

double Percentile(std::vector<double>& sorted_in_place, double p) {
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  size_t n = sorted_in_place.size();
  if (n == 0) return 0.0;
  size_t rank =
      static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return sorted_in_place[std::min(rank, n) - 1];
}

/// The headline comparison. Standalone: the service drains with maintenance
/// and checkpointing off — pure queue hand-off plus templatization. Loaded:
/// the same trace while the background thread retrains every
/// `maintenance_period` of arrival time and appends a delta checkpoint
/// every checkpoint period, with a reader thread issuing a bounded
/// Forecast every millisecond — the planner-style cadence of the paper's
/// consumer, paced so the throughput delta isolates the background duties
/// rather than a busy-looping reader (which on a single-core host would
/// just measure the scheduler splitting one CPU three ways).
void ReportSummary() {
  size_t n = bench::FastMode() ? 16384 : 131072;
  auto trace = MakeTrace(n, 8, 11);
  // 30s of arrival time per batch: a 131072-arrival run spans ~17 hours of
  // virtual time, so a 600s maintenance period and checkpoint period keep
  // both background duties firing continuously during the feed.
  constexpr Timestamp kStep = 30;
  constexpr Timestamp kPeriod = 600;
  const Timestamp warm_end = kSecondsPerDay;

  // Standalone: background drain only.
  double standalone_seconds;
  {
    QueryBot5000 bot(ServiceConfig(/*maintenance_period=*/365 *
                                   kSecondsPerDay));
    QueryBot5000::ServiceOptions opts;
    opts.queue_capacity = 1024;
    opts.background = true;
    opts.auto_maintenance = false;
    if (!bot.StartService(opts).ok()) return;
    // Warm the template cache so both runs measure the steady state.
    (void)FeedTimed(bot, MakeTrace(4096, 8, 11), 0, kStep);
    standalone_seconds = FeedTimed(bot, trace, warm_end, kStep);
    (void)bot.StopService();
  }

  // Loaded: continuous training + incremental checkpointing + a forecast
  // reader.
  double loaded_seconds;
  std::vector<double> latencies;
  uint64_t full_rung = 0, lower_rung = 0;
  uint64_t epochs, delta_writes, bg_rounds, stalls;
  {
    QueryBot5000 bot(ServiceConfig(/*maintenance_period=*/kPeriod));
    const std::string path = "/tmp/qb5000_bench_service_ckpt.qbc";
    QueryBot5000::ServiceOptions opts;
    opts.queue_capacity = 1024;
    opts.background = true;
    opts.auto_maintenance = true;
    opts.checkpoint_path = path;
    opts.checkpoint_period_seconds = kPeriod;
    opts.compact_every = 8;
    if (!bot.StartService(opts).ok()) return;
    (void)FeedTimed(bot, MakeTrace(4096, 8, 11), 0, kStep);

    std::atomic<bool> feeding{true};  // lint:raw-atomic-ok (bench stop flag)
    ThreadPool pool(2);
    pool.Run(2, [&](size_t task) {
      if (task == 0) {
        loaded_seconds = FeedTimed(bot, trace, warm_end, kStep);
        feeding.store(false, std::memory_order_release);
        return;
      }
      while (feeding.load(std::memory_order_acquire)) {
        ForecastRung rung = ForecastRung::kFull;
        Stopwatch call;
        auto f = bot.Forecast(warm_end, kSecondsPerHour, kBudgetSeconds,
                              &rung);
        latencies.push_back(call.ElapsedSeconds());
        if (f.ok() && rung == ForecastRung::kFull) {
          ++full_rung;
        } else {
          ++lower_rung;
        }
        benchmark::DoNotOptimize(f);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    epochs = bot.model_epoch();
    delta_writes =
        bot.Metrics().GetCounter("checkpoint.delta_writes_total")->value();
    bg_rounds = bot.Metrics().GetCounter("core.bg_rounds_total")->value();
    stalls =
        bot.Metrics().GetCounter("core.queue_enqueue_stalls_total")->value();
    (void)bot.StopService();
  }

  double standalone_qps = static_cast<double>(n) / standalone_seconds;
  double loaded_qps = static_cast<double>(n) / loaded_seconds;
  double p50 = Percentile(latencies, 50.0);
  double p99 = Percentile(latencies, 99.0);
  double full_fraction =
      latencies.empty()
          ? 0.0
          : static_cast<double>(full_rung) /
                static_cast<double>(full_rung + lower_rung);

  std::printf("#KV hardware_threads %zu\n", GetThreadCount());
  std::printf("#KV arrivals %zu\n", n);
  std::printf("#KV standalone_qps %.0f\n", standalone_qps);
  std::printf("#KV loaded_qps %.0f\n", loaded_qps);
  std::printf("#KV loaded_over_standalone %.4f\n",
              loaded_qps / standalone_qps);
  std::printf("#KV model_epochs %llu\n",
              static_cast<unsigned long long>(epochs));
  std::printf("#KV delta_checkpoint_writes %llu\n",
              static_cast<unsigned long long>(delta_writes));
  std::printf("#KV bg_rounds %llu\n",
              static_cast<unsigned long long>(bg_rounds));
  std::printf("#KV enqueue_stalls %llu\n",
              static_cast<unsigned long long>(stalls));
  std::printf("#KV budget_seconds %g\n", kBudgetSeconds);
  std::printf("#KV forecast_samples %zu\n", latencies.size());
  std::printf("#KV forecast_p50_seconds %.6f\n", p50);
  std::printf("#KV forecast_p99_seconds %.6f\n", p99);
  std::printf("#KV forecast_full_rung_fraction %.4f\n", full_fraction);
  std::printf(
      "service ingest: standalone %.2fM q/s, with continuous training + "
      "delta checkpoints %.2fM q/s (%.1f%%); forecast under load p50 %.0fus "
      "p99 %.0fus over %zu calls, %.1f%% full rung "
      "(%llu retrains, %llu delta writes)\n",
      standalone_qps / 1e6, loaded_qps / 1e6,
      100.0 * loaded_qps / standalone_qps, p50 * 1e6, p99 * 1e6,
      latencies.size(), 100.0 * full_fraction,
      static_cast<unsigned long long>(epochs),
      static_cast<unsigned long long>(delta_writes));
}

/// Drain-worker sweep (DESIGN.md §14): the same standalone feed at widths
/// 0 (classic inline drain), 1, 2, 4, 8. Width 1 prices the prepare/merge
/// hand-off itself — the acceptance bar is ≤10% under inline; wider runs
/// can only show scaling when the host has cores for the workers, so the
/// committed numbers carry hardware_threads next to them and single-core
/// hosts are expected to report flat (or slightly inverted) curves.
void ReportDrainWorkerSweep() {
  size_t n = bench::FastMode() ? 16384 : 131072;
  auto trace = MakeTrace(n, 8, 17);
  constexpr Timestamp kStep = 30;
  double inline_qps = 0.0;
  for (size_t workers : {size_t{0}, size_t{1}, size_t{2}, size_t{4},
                         size_t{8}}) {
    QueryBot5000 bot(ServiceConfig(/*maintenance_period=*/365 *
                                   kSecondsPerDay));
    QueryBot5000::ServiceOptions opts;
    opts.queue_capacity = 1024;
    opts.background = true;
    opts.auto_maintenance = false;
    opts.drain_workers = workers;
    if (!bot.StartService(opts).ok()) return;
    (void)FeedTimed(bot, MakeTrace(4096, 8, 17), 0, kStep);  // warm cache
    double seconds = FeedTimed(bot, trace, kSecondsPerDay, kStep);
    uint64_t merge_waits =
        bot.Metrics().GetCounter("core.drain_merge_waits_total")->value();
    (void)bot.StopService();
    double qps = static_cast<double>(n) / seconds;
    if (workers == 0) inline_qps = qps;
    std::printf("#KV drain_workers_%zu_qps %.0f\n", workers, qps);
    std::printf("#KV drain_workers_%zu_merge_waits %llu\n", workers,
                static_cast<unsigned long long>(merge_waits));
    if (workers == 1 && inline_qps > 0.0) {
      std::printf("#KV drain1_over_inline %.4f\n", qps / inline_qps);
    }
    std::printf("sharded drain, %zu worker(s): %.2fM q/s (%llu merge waits)\n",
                workers, qps / 1e6,
                static_cast<unsigned long long>(merge_waits));
  }
}

/// Producer+consumer cost of one batch through the ring in foreground
/// mode — the queue-layer overhead a caller pays over calling IngestBatch
/// directly (BM_ServiceSyncIngestBatch below).
void BM_ServiceEnqueueDrainBatch(benchmark::State& state) {
  auto trace = MakeTrace(kBatch * 256, 8, 21);
  QueryBot5000 bot(ServiceConfig(365 * kSecondsPerDay));
  QueryBot5000::ServiceOptions opts;
  opts.queue_capacity = 16;
  opts.background = false;
  opts.auto_maintenance = false;
  if (!bot.StartService(opts).ok()) return;
  std::vector<QueryArrival> batch(kBatch);
  size_t i = 0;
  Timestamp ts = 0;
  for (auto _ : state) {
    for (size_t j = 0; j < kBatch; ++j) {
      batch[j] = {trace[(i + j) % trace.size()], ts, 1.0};
    }
    if (!bot.EnqueueBatch(batch).ok()) {
      bot.DrainForTest();
      (void)bot.EnqueueBatch(batch);
    }
    i = (i + kBatch) % trace.size();
    ++ts;
  }
  bot.DrainForTest();
  (void)bot.StopService();
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_ServiceEnqueueDrainBatch);

void BM_ServiceSyncIngestBatch(benchmark::State& state) {
  auto trace = MakeTrace(kBatch * 256, 8, 21);
  QueryBot5000 bot(ServiceConfig(365 * kSecondsPerDay));
  std::vector<QueryArrival> batch(kBatch);
  size_t i = 0;
  Timestamp ts = 0;
  for (auto _ : state) {
    for (size_t j = 0; j < kBatch; ++j) {
      batch[j] = {trace[(i + j) % trace.size()], ts, 1.0};
    }
    auto ids = bot.IngestBatch(batch);
    benchmark::DoNotOptimize(ids);
    i = (i + kBatch) % trace.size();
    ++ts;
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kBatch));
}
BENCHMARK(BM_ServiceSyncIngestBatch);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ReportSummary();
  ReportDrainWorkerSweep();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

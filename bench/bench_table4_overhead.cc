// Table 4: Computation & Storage Overhead — per-component timing and
// storage of QB5000: Pre-Processor templatization cost per query, daily
// Clusterer update cost, model training/prediction time (CPU), and the
// sizes of the arrival-rate history, clustering state, and models.
// Includes google-benchmark microbenchmarks for the hot paths plus an
// ablation of the kd-tree vs linear-scan center lookup.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/metrics.h"
#include "clusterer/kdtree.h"
#include "forecaster/dataset.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"
#include "preprocessor/templatizer.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

// --- google-benchmark microbenchmarks (hot paths) --------------------------

void BM_TemplatizeSelect(benchmark::State& state) {
  std::string sql =
      "SELECT arrival_minute FROM stop_times WHERE stop_id = 1277 AND "
      "route_id = 31 ORDER BY arrival_minute LIMIT 5";
  for (auto _ : state) {
    auto out = Templatize(sql);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TemplatizeSelect);

void BM_PreProcessorIngest(benchmark::State& state) {
  PreProcessor pre;
  int i = 0;
  for (auto _ : state) {
    int seq = i++;
    auto id = pre.Ingest(
        "SELECT status FROM applications WHERE applicant_id = " +
            std::to_string(seq % 10000),
        (seq % 100000) * 60);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_PreProcessorIngest);

void BM_KdTreeNearest(benchmark::State& state) {
  Rng rng(4);
  std::vector<Vector> points;
  size_t dim = 128;
  for (int i = 0; i < 400; ++i) {
    Vector p(dim);
    for (double& v : p) v = rng.Uniform();
    points.push_back(std::move(p));
  }
  KdTree tree;
  tree.Build(points);
  Vector query(dim, 0.5);
  for (auto _ : state) {
    auto nn = tree.Nearest(query);
    benchmark::DoNotOptimize(nn);
  }
}
BENCHMARK(BM_KdTreeNearest);

void BM_LinearScanNearest(benchmark::State& state) {
  Rng rng(4);
  std::vector<Vector> points;
  size_t dim = 128;
  for (int i = 0; i < 400; ++i) {
    Vector p(dim);
    for (double& v : p) v = rng.Uniform();
    points.push_back(std::move(p));
  }
  Vector query(dim, 0.5);
  for (auto _ : state) {
    double best = 1e300;
    size_t best_i = 0;
    for (size_t i = 0; i < points.size(); ++i) {
      double d = 0;
      for (size_t j = 0; j < dim; ++j) {
        double diff = points[i][j] - query[j];
        d += diff * diff;
      }
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    benchmark::DoNotOptimize(best_i);
  }
}
BENCHMARK(BM_LinearScanNearest);

// --- Table 4-style component report ----------------------------------------

void ComponentReport() {
  std::printf("\n--- component overhead (BusTracker, %d days) ---\n",
              FastMode() ? 7 : 14);
  int days = FastMode() ? 7 : 14;

  // Pre-Processor: time per raw query and history storage per day.
  auto workload = MakeBusTracker();
  auto events =
      workload.Materialize(0, 2 * kSecondsPerHour, 10 * kSecondsPerMinute, 3,
                           /*volume_scale=*/0.05);
  PreProcessor pre_timing;
  Stopwatch ingest_timer;
  for (const auto& event : events) {
    pre_timing.Ingest(event.sql, event.timestamp).ok();
  }
  double per_query_ms =
      events.empty() ? 0.0
                     : 1000.0 * ingest_timer.ElapsedSeconds() /
                           static_cast<double>(events.size());

  auto prepared = Prepare(MakeBusTracker(), days, kSecondsPerMinute);
  double history_mb_per_day =
      static_cast<double>(prepared.pre.HistoryStorageBytes()) / (1024.0 * 1024.0) /
      days;

  // Clusterer: one daily update.
  Stopwatch cluster_timer;
  prepared.clusterer.Update(prepared.pre, prepared.end);
  double cluster_seconds = cluster_timer.ElapsedSeconds();
  double cluster_kb = 0;
  for (const auto& [id, cluster] : prepared.clusterer.clusters()) {
    (void)id;
    cluster_kb += static_cast<double>(cluster.center.size() * sizeof(double)) / 1024.0;
  }

  // Models: train/predict on the top clusters.
  auto series = TopClusterSeries(prepared, 0.95, 5, kSecondsPerHour, 0,
                                 prepared.end);
  auto dataset = BuildDataset(series, 24, 1);
  if (!dataset.ok()) {
    std::printf("model dataset failed\n");
    return;
  }
  ModelOptions opts;
  opts.num_series = series.size();
  opts.max_epochs = FastMode() ? 10 : 40;
  LinearRegressionModel lr(opts);
  RnnModel rnn(opts);
  KernelRegressionModel kr(opts);
  Stopwatch model_timer;
  lr.Fit(dataset->x, dataset->y).ok();
  double lr_train = model_timer.ElapsedSeconds();
  model_timer.Restart();
  rnn.Fit(dataset->x, dataset->y).ok();
  double rnn_train = model_timer.ElapsedSeconds();
  model_timer.Restart();
  kr.Fit(dataset->x, dataset->y).ok();
  double kr_fit = model_timer.ElapsedSeconds();
  Vector probe = dataset->x.Row(0);
  model_timer.Restart();
  for (int i = 0; i < 100; ++i) benchmark::DoNotOptimize(kr.Predict(probe));
  double kr_predict = model_timer.ElapsedSeconds() / 100.0;

  double lr_kb = static_cast<double>((dataset->x.cols() + 1) *
                                     dataset->y.cols() * sizeof(double)) /
                 1024.0;
  double kr_mb = static_cast<double>((dataset->x.rows() *
                                      (dataset->x.cols() + dataset->y.cols())) *
                                     sizeof(double)) /
                 (1024.0 * 1024.0);

  // Machine-readable lines for tools/bench_to_json.py (BENCH_table4.json).
  std::printf("#KV pre_ms_per_query %.4f\n", per_query_ms);
  std::printf("#KV history_mb_per_day %.4f\n", history_mb_per_day);
  std::printf("#KV cluster_update_seconds %.3f\n", cluster_seconds);
  std::printf("#KV cluster_state_kb %.1f\n", cluster_kb);
  std::printf("#KV lr_train_seconds %.3f\n", lr_train);
  std::printf("#KV rnn_train_seconds %.3f\n", rnn_train);
  std::printf("#KV kr_fit_seconds %.3f\n", kr_fit);
  std::printf("#KV kr_predict_seconds %.5f\n", kr_predict);
  std::printf("#KV lr_model_kb %.1f\n", lr_kb);
  std::printf("#KV kr_data_mb %.1f\n", kr_mb);

  std::printf("%-28s %12s %14s\n", "component", "computation", "storage");
  std::printf("%-28s %9.3f ms/query %10.2f MB/day\n", "Pre-Processor",
              per_query_ms, history_mb_per_day);
  std::printf("%-28s %10.2f s/day  %11.1f KB\n", "Clusterer", cluster_seconds,
              cluster_kb);
  std::printf("%-28s %10.3f s      %11.1f KB\n", "LR model (train)", lr_train,
              lr_kb);
  std::printf("%-28s %10.2f s      %11s\n", "RNN model (train, CPU)", rnn_train,
              "~28 KB");
  std::printf("%-28s fit %6.3f s / %6.4f s per prediction; data %.1f MB\n",
              "KR model", kr_fit, kr_predict, kr_mb);
  std::printf("\npaper (Table 4): pre-processing ~0.05 ms/query; clustering\n"
              "3-15 s/day; LR trains in fractions of a second; RNN dominates\n"
              "training cost (tens to hundreds of seconds on CPU); KR has no\n"
              "training but carries its training data (MBs).\n");
  std::printf("\nablation note: at the feature dimensionalities QB5000 uses\n"
              "(hundreds+), the kd-tree's pruning decays toward a linear scan\n"
              "(compare BM_KdTreeNearest vs BM_LinearScanNearest above) — the\n"
              "classic curse of dimensionality. The clusterer keeps the exact\n"
              "linear-scan fallback for correctness either way (rho check).\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Table 4: Computation & Storage Overhead",
              "Table 4 (per-component time and space)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ComponentReport();
  return 0;
}

// Figure 3: Arrival Rate History — the largest BusTracker cluster's center
// plus its top member templates: distinct volumes, one shared cyclic shape
// (the property that lets one model per cluster stand in for them all).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace qb5000;
using namespace qb5000::bench;

int main() {
  PrintHeader("Figure 3: Arrival Rate History",
              "Figure 3 (largest cluster center + top-4 members)");
  int days = FastMode() ? 7 : 14;
  auto prepared = Prepare(MakeBusTracker(), days, 10 * kSecondsPerMinute);

  auto top = prepared.clusterer.TopClustersByVolume(1);
  if (top.empty()) {
    std::printf("no clusters formed\n");
    return 1;
  }
  const auto& cluster = prepared.clusterer.clusters().at(top[0]);
  Timestamp from = prepared.end - std::min<Timestamp>(prepared.end,
                                                      12 * kSecondsPerDay);
  auto center = prepared.clusterer.CenterSeries(prepared.pre, top[0],
                                                kSecondsPerHour, from,
                                                prepared.end);
  if (!center.ok()) {
    std::printf("center series failed: %s\n", center.status().ToString().c_str());
    return 1;
  }
  std::printf("largest cluster: %zu templates, %.0f queries in the last day\n\n",
              cluster.members.size(), cluster.volume);
  PrintSparkline("cluster center", center->values());

  // The four highest-volume member templates.
  std::vector<std::pair<double, TemplateId>> members;
  for (TemplateId id : cluster.members) {
    const auto* info = prepared.pre.GetTemplate(id);
    if (info != nullptr) members.emplace_back(info->total_queries, id);
  }
  std::sort(members.rbegin(), members.rend());
  for (size_t i = 0; i < members.size() && i < 4; ++i) {
    const auto* info = prepared.pre.GetTemplate(members[i].second);
    auto series = info->history.Series(kSecondsPerHour, from, prepared.end);
    if (!series.ok()) continue;
    PrintSparkline("query " + std::to_string(i + 1), series->values());
    std::printf("    %.60s...\n", info->text.c_str());
  }
  PrintSeriesRow("fig3_center_qph", center->values(), 0);
  return 0;
}

// Figure 13 (Appendix A): Cluster Coverage vs rho — the fraction of
// workload volume covered by the three largest clusters as the similarity
// threshold rho sweeps 0.5..0.9. Expected shape: stable from 0.5 to 0.8,
// dropping at 0.9 as clusters fragment.
#include <cstdio>

#include "bench_util.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

struct RhoPoint {
  double coverage = 0;
  size_t clusters = 0;
};

RhoPoint Top3Coverage(const SyntheticWorkload& workload, int days, double rho) {
  auto prepared = Prepare(workload, days, 10 * kSecondsPerMinute, rho);
  RhoPoint point;
  point.clusters = prepared.clusterer.clusters().size();
  double total = prepared.clusterer.TotalVolume();
  if (total <= 0) return point;
  double covered = 0;
  for (ClusterId id : prepared.clusterer.TopClustersByVolume(3)) {
    covered += prepared.clusterer.clusters().at(id).volume;
  }
  point.coverage = covered / total;
  return point;
}

}  // namespace

int main() {
  PrintHeader("Figure 13: Cluster Coverage vs rho",
              "Appendix A Figure 13 (top-3 coverage across rho)");
  int days = FastMode() ? 7 : 14;
  const double kRhos[] = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95};
  std::printf("%-11s", "workload");
  for (double rho : kRhos) std::printf("  rho=%.2f", rho);
  std::printf("\n------------------------------------------------------------\n");
  struct Job {
    const char* name;
    SyntheticWorkload workload;
  } jobs[] = {{"Admissions", MakeAdmissions()},
              {"BusTracker", MakeBusTracker()},
              {"MOOC", MakeMooc()}};
  for (auto& job : jobs) {
    std::printf("%-11s", job.name);
    for (double rho : kRhos) {
      auto point = Top3Coverage(job.workload, days, rho);
      std::printf(" %5.1f%%/%zu", 100.0 * point.coverage, point.clusters);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n(coverage%% / cluster count)\n");
  std::printf("\npaper shape: coverage stable for rho in [0.5, 0.8], drops at\n"
              "rho >= 0.9 as clusters split. Our scaled traces have far fewer\n"
              "templates, so top-3 coverage saturates higher than the paper's;\n"
              "the fragmentation trend shows in the cluster counts.\n");
  return 0;
}

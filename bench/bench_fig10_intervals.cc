// Figure 10: Prediction Interval Evaluation — ENSEMBLE accuracy and
// training time with 10/20/30/60/120-minute prediction intervals at
// 1-hour, 1-day, and 3-day horizons on BusTracker. Expected shape:
// shorter intervals -> better per-hour accuracy but longer training; the
// interval dominates training time, the horizon barely matters.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/metrics.h"
#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"
#include "math/stats.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

struct CellResult {
  double log_mse = 0.0;
  double train_seconds = 0.0;
};

/// Evaluates ENSEMBLE at `interval_minutes`; per-hour predictions are the
/// sum of the sub-hour interval predictions (Section 7.4's comparison
/// scheme) so all intervals are scored on the same hourly target.
CellResult EvaluateInterval(const PreProcessor& pre,
                            const OnlineClusterer& clusterer, Timestamp end,
                            int interval_minutes, int horizon_hours) {
  CellResult cell;
  int64_t interval = interval_minutes * kSecondsPerMinute;
  auto top = clusterer.TopClustersByVolume(3);
  std::vector<TimeSeries> series;
  for (ClusterId id : top) {
    auto center = clusterer.CenterSeries(pre, id, interval, 0, end);
    if (center.ok()) series.push_back(std::move(*center));
  }
  if (series.empty()) return cell;

  // For intervals <= 60 min, an hour spans `steps_per_hour` intervals; for
  // the 120-min interval the paper splits each interval across its two
  // hours, which is equivalent to scoring the per-interval totals at half
  // weight (handled below).
  size_t steps_per_hour =
      interval_minutes <= 60 ? static_cast<size_t>(60 / interval_minutes) : 1;
  size_t hours_per_step =
      interval_minutes <= 60 ? 1 : static_cast<size_t>(interval_minutes / 60);
  size_t window = 24 * 60 / static_cast<size_t>(interval_minutes);
  size_t horizon_steps = std::max<size_t>(
      1, static_cast<size_t>(horizon_hours) * 60 /
             static_cast<size_t>(interval_minutes));
  auto dataset = BuildDataset(series, window, horizon_steps);
  if (!dataset.ok()) return cell;
  size_t n = dataset->x.rows();
  size_t train_n = static_cast<size_t>(0.7 * static_cast<double>(n));
  // Subsample training rows so fine intervals stay tractable while still
  // carrying more samples than coarse intervals (stride by interval).
  size_t stride = 1;
  size_t max_train = FastMode() ? 250 : 600;
  while (train_n / stride > max_train) ++stride;
  size_t kept = train_n / stride;
  Matrix train_x(kept, dataset->x.cols());
  Matrix train_y(kept, dataset->y.cols());
  for (size_t i = 0; i < kept; ++i) {
    train_x.SetRow(i, dataset->x.Row(i * stride));
    train_y.SetRow(i, dataset->y.Row(i * stride));
  }

  ModelOptions opts;
  opts.num_series = series.size();
  opts.hidden_dim = FastMode() ? 8 : 12;
  opts.embedding_dim = 8;
  opts.num_layers = 1;
  opts.max_epochs = FastMode() ? 8 : 20;
  opts.patience = 4;
  auto lr = std::make_shared<LinearRegressionModel>(opts);
  auto rnn = std::make_shared<RnnModel>(opts);
  Stopwatch train_timer;
  if (!lr->Fit(train_x, train_y).ok() || !rnn->Fit(train_x, train_y).ok()) {
    return cell;
  }
  cell.train_seconds = train_timer.ElapsedSeconds();
  EnsembleModel ensemble(lr, rnn);

  // Score per *hour*: sum interval predictions within each hour (or split
  // a super-hour interval evenly across its hours).
  Vector actual_hourly, predicted_hourly;
  double hour_scale = 1.0 / static_cast<double>(hours_per_step);
  for (size_t i = train_n; i + steps_per_hour <= n; i += steps_per_hour) {
    double actual_sum = 0, predicted_sum = 0;
    bool ok = true;
    for (size_t s = 0; s < steps_per_hour; ++s) {
      auto pred = ensemble.Predict(dataset->x.Row(i + s));
      if (!pred.ok()) {
        ok = false;
        break;
      }
      Vector pred_rates = ToArrivalRates(*pred);
      Vector actual_rates = ToArrivalRates(dataset->y.Row(i + s));
      for (size_t j = 0; j < pred_rates.size(); ++j) {
        predicted_sum += pred_rates[j] * hour_scale;
        actual_sum += actual_rates[j] * hour_scale;
      }
    }
    if (!ok) continue;
    actual_hourly.push_back(actual_sum);
    predicted_hourly.push_back(predicted_sum);
  }
  cell.log_mse = LogSpaceMse(actual_hourly, predicted_hourly);
  return cell;
}

}  // namespace

int main() {
  PrintHeader("Figure 10: Prediction Interval Evaluation",
              "Figure 10 (ENSEMBLE accuracy & training time vs interval)");
  // Long enough that the held-out tail spans a full week (weekday and
  // weekend days), otherwise the day-ahead horizons are dominated by
  // unpredictable weekday/weekend transitions.
  int days = FastMode() ? 10 : 18;
  auto prepared = Prepare(MakeBusTracker(), days, 5 * kSecondsPerMinute);

  const int kIntervals[] = {10, 20, 30, 60, 120};
  const int kHorizonHours[] = {1, 24, 72};
  std::printf("\n(a) accuracy, log MSE of hourly totals (lower = better):\n");
  std::printf("%-10s", "horizon");
  for (int m : kIntervals) std::printf(" %7dm", m);
  std::printf("\n");
  std::vector<std::vector<CellResult>> cells;
  for (int horizon : kHorizonHours) {
    std::vector<CellResult> row;
    std::printf("%-10s", (std::to_string(horizon) + " Hour").c_str());
    for (int interval : kIntervals) {
      row.push_back(EvaluateInterval(prepared.pre, prepared.clusterer,
                                     prepared.end, interval, horizon));
      std::printf(" %8.2f", row.back().log_mse);
      std::fflush(stdout);
    }
    std::printf("\n");
    cells.push_back(std::move(row));
  }
  std::printf("\n(b) training time, seconds (LR + RNN, CPU):\n");
  std::printf("%-10s", "horizon");
  for (int m : kIntervals) std::printf(" %7dm", m);
  std::printf("\n");
  for (size_t h = 0; h < cells.size(); ++h) {
    std::printf("%-10s", (std::to_string(kHorizonHours[h]) + " Hour").c_str());
    for (const auto& cell : cells[h]) std::printf(" %8.2f", cell.train_seconds);
    std::printf("\n");
  }
  std::printf("\npaper shapes: accuracy improves as intervals shrink (most at\n"
              "long horizons); training time drops ~2.5x from 10m to 120m and\n"
              "is nearly flat across horizons.\n");
  return 0;
}

// Table 1: Sample Workloads — per-trace summary (DBMS type, tables, trace
// length, queries/day, statement-type breakdown). Our generators run at
// laptop scale, so absolute volumes are smaller than the paper's; the
// paper's values are printed alongside for comparison. The *mix* shape
// (SELECT-dominated, small write fractions) is the reproduced property.
#include <cstdio>

#include "bench_util.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

void Report(const SyntheticWorkload& workload, int days, const char* paper_row) {
  PreProcessor pre;
  workload
      .FeedAggregated(pre, 0, static_cast<Timestamp>(days) * kSecondsPerDay,
                      10 * kSecondsPerMinute, 1)
      .ok();
  auto stats = workload.Stats(pre, days);
  double total = pre.total_queries();
  auto pct = [total](double v) { return total > 0 ? 100.0 * v / total : 0.0; };
  std::printf("%-11s | %-10s | %6zu | %5.0f | %11.0f | %5.1f%% | %5.1f%% | %5.1f%% | %5.1f%%\n",
              stats.workload.c_str(), stats.dbms.c_str(), stats.num_tables,
              stats.trace_days, stats.avg_queries_per_day, pct(stats.selects),
              pct(stats.inserts), pct(stats.updates), pct(stats.deletes));
  std::printf("  paper:    %s\n", paper_row);
}

}  // namespace

int main() {
  PrintHeader("Table 1: Sample Workloads",
              "Table 1 (workload trace summaries)");
  int scale = FastMode() ? 4 : 1;
  std::printf("%-11s | %-10s | tables | days  |  queries/day |  SEL   |  INS   |  UPD   |  DEL\n",
              "workload", "dbms");
  std::printf("------------------------------------------------------------------------------------\n");
  Report(MakeAdmissions(), 60 / scale,
         "MySQL, 216 tables, 507 days, 5M/day, 99.8% / 0.07% / 0.1% / 0.02%");
  Report(MakeBusTracker(), 58 / scale,
         "PostgreSQL, 95 tables, 58 days, 19.9M/day, 98% / 0.8% / 1% / 0.2%");
  Report(MakeMooc(), 60 / scale,
         "MySQL, 454 tables, 85 days, 1.1M/day, 88% / 1.3% / 6% / 4.7%");
  std::printf("\nNote: generators are volume-scaled; compare the SELECT-heavy mix\n"
              "shape and relative magnitudes, not absolute counts (DESIGN.md).\n");
  return 0;
}

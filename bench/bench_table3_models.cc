// Table 3: Forecasting Models — the property matrix (linear / memory /
// kernel) of the model families QB5000 considers (Section 6.1), generated
// from the live trait functions so it cannot drift from the code.
#include <cstdio>

#include "bench_util.h"
#include "forecaster/model.h"

using namespace qb5000;
using namespace qb5000::bench;

int main() {
  PrintHeader("Table 3: Forecasting Models", "Table 3 (model properties)");
  const ModelKind kinds[] = {ModelKind::kLr,  ModelKind::kArma,
                             ModelKind::kKr,  ModelKind::kRnn,
                             ModelKind::kFnn, ModelKind::kPsrnn};
  std::printf("%-8s", "");
  for (ModelKind kind : kinds) {
    std::printf(" %-6s", std::string(ModelKindName(kind)).c_str());
  }
  std::printf("\n");
  auto row = [&](const char* label, bool ModelTraits::*field) {
    std::printf("%-8s", label);
    for (ModelKind kind : kinds) {
      std::printf(" %-6s", TraitsOf(kind).*field ? "yes" : "-");
    }
    std::printf("\n");
  };
  row("Linear", &ModelTraits::linear);
  row("Memory", &ModelTraits::memory);
  row("Kernel", &ModelTraits::kernel);
  std::printf("\npaper (Table 3): LR linear; ARMA linear+memory; KR kernel;\n"
              "RNN memory; FNN none; PSRNN memory+kernel.\n");
  return 0;
}

// Ingest fast-path microbenchmarks (DESIGN.md §11): the cold full-parse
// path vs the template-cache hit path vs batched/sharded ingest, in
// queries/second. The acceptance bars for this bench (tracked in
// EXPERIMENTS.md): cache hits >= 5x cold parse single-threaded, and
// IngestBatch >= 2x the per-query loop on a repeat-heavy trace at the same
// thread count — the batch wins by amortizing lock/metric/map traffic per
// group instead of per arrival, so it holds even on one core.
//
// Lines prefixed "#KV key value" are machine-readable; tools/bench_to_json.py
// collects them (plus the google-benchmark JSON) into BENCH_ingest.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "preprocessor/preprocessor.h"

using namespace qb5000;

namespace {

constexpr size_t kDistinct = 64;

/// One concrete statement of template `t` with literals drawn from `rng`.
/// The shape mix mirrors the paper's workloads (Section 6: BusTracker and
/// Admissions are dominated by short point lookups, with a tail of heavier
/// statements): half point SELECTs, a quarter UPDATEs, a quarter join +
/// range scan + sort.
std::string MakeStatement(size_t t, Rng& rng) {
  std::string tbl = std::to_string(t);
  switch (t % 4) {
    case 0:
      return "SELECT * FROM orders_" + tbl +
             " WHERE id = " + std::to_string(rng.UniformInt(1, 100000));
    case 1:
      return "SELECT status, total FROM orders_" + tbl +
             " WHERE customer_id = " +
             std::to_string(rng.UniformInt(1, 100000)) + " AND region = 'r" +
             std::to_string(rng.UniformInt(1, 8)) + "'";
    case 2:
      return "UPDATE orders_" + tbl + " SET status = 's" +
             std::to_string(rng.UniformInt(1, 5)) +
             "' WHERE id = " + std::to_string(rng.UniformInt(1, 100000));
    default:
      return "SELECT o.id, o.total, c.name FROM orders_" + tbl +
             " o JOIN customers c ON o.customer_id = c.id WHERE o.region = "
             "'r" +
             std::to_string(rng.UniformInt(1, 8)) + "' AND o.total > " +
             std::to_string(rng.UniformInt(1, 10000)) + " AND o.ts BETWEEN " +
             std::to_string(rng.UniformInt(1, 1000000)) + " AND " +
             std::to_string(rng.UniformInt(1000000, 2000000)) +
             " ORDER BY o.ts DESC LIMIT 50";
  }
}

/// A repeat-heavy raw-SQL arrival trace, as production workloads are: the
/// app issues the same prepared statements with literals from a bounded
/// working set, so exact raw strings recur. `variants` distinct literal
/// bindings per template (kDistinct * variants distinct raw strings total).
std::vector<std::string> MakeTrace(size_t n, size_t variants, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> pool;
  pool.reserve(kDistinct * variants);
  for (size_t t = 0; t < kDistinct; ++t) {
    for (size_t v = 0; v < variants; ++v) pool.push_back(MakeStatement(t, rng));
  }
  std::vector<std::string> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(pool[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))]);
  }
  return trace;
}

void BM_IngestColdParse(benchmark::State& state) {
  auto trace = MakeTrace(16384, 8, 1);
  PreProcessor::Options options;
  options.template_cache_capacity = 0;  // every ingest pays the full parse
  PreProcessor pre(options);
  size_t i = 0;
  Timestamp ts = 0;
  for (auto _ : state) {
    auto id = pre.Ingest(trace[i], ts);
    benchmark::DoNotOptimize(id);
    i = (i + 1) % trace.size();
    ++ts;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IngestColdParse);

void BM_IngestCacheHit(benchmark::State& state) {
  auto trace = MakeTrace(16384, 8, 2);
  PreProcessor pre;
  // Warm: one miss per distinct template; everything after is a hit.
  for (size_t i = 0; i < kDistinct; ++i) (void)pre.Ingest(trace[i], 0);
  size_t i = 0;
  Timestamp ts = 0;
  for (auto _ : state) {
    auto id = pre.Ingest(trace[i], ts);
    benchmark::DoNotOptimize(id);
    i = (i + 1) % trace.size();
    ++ts;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IngestCacheHit);

/// Per-query loop over a repeat-heavy trace, whole-trace granularity so the
/// comparison with BM_IngestBatch is arrival-for-arrival.
void BM_IngestPerQuery(benchmark::State& state) {
  auto trace = MakeTrace(8192, 8, 3);
  PreProcessor pre;
  for (auto _ : state) {
    Timestamp ts = 0;
    for (const auto& sql : trace) {
      auto id = pre.Ingest(sql, ts / 100);  // ~82 arrivals share a second
      benchmark::DoNotOptimize(id);
      ++ts;
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_IngestPerQuery);

void BM_IngestBatch(benchmark::State& state) {
  auto trace = MakeTrace(8192, 8, 3);
  size_t batch_size = static_cast<size_t>(state.range(0));
  PreProcessor pre;
  std::vector<QueryArrival> arrivals;
  arrivals.reserve(batch_size);
  for (auto _ : state) {
    Timestamp ts = 0;
    for (size_t at = 0; at < trace.size(); at += batch_size) {
      size_t end = std::min(trace.size(), at + batch_size);
      arrivals.clear();
      for (size_t i = at; i < end; ++i) {
        arrivals.push_back(QueryArrival{trace[i], ts / 100, 1.0});
        ++ts;
      }
      auto ids = pre.IngestBatch(arrivals);
      benchmark::DoNotOptimize(ids);
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * trace.size()));
}
BENCHMARK(BM_IngestBatch)->Arg(1024)->Arg(8192);

/// One timed pass per configuration for the #KV summary (q/s + speedups).
double TimedPass(bool cache, bool batch, const std::vector<std::string>& trace) {
  PreProcessor::Options options;
  if (!cache) options.template_cache_capacity = 0;
  PreProcessor pre(options);
  std::vector<QueryArrival> arrivals;
  Stopwatch watch;
  if (batch) {
    constexpr size_t kBatch = 8192;
    Timestamp ts = 0;
    for (size_t at = 0; at < trace.size(); at += kBatch) {
      size_t end = std::min(trace.size(), at + kBatch);
      arrivals.clear();
      for (size_t i = at; i < end; ++i) {
        arrivals.push_back(QueryArrival{trace[i], ts / 100, 1.0});
        ++ts;
      }
      auto ids = pre.IngestBatch(arrivals);
      benchmark::DoNotOptimize(ids);
    }
  } else {
    Timestamp ts = 0;
    for (const auto& sql : trace) {
      auto id = pre.Ingest(sql, ts / 100);
      benchmark::DoNotOptimize(id);
      ++ts;
    }
  }
  return static_cast<double>(trace.size()) / watch.ElapsedSeconds();
}

/// Best of three passes: the minimum-time pass is the least perturbed by
/// scheduler noise (the same reason google-benchmark reports min across
/// repetitions), so the speedup ratios compare like against like.
double QueriesPerSecond(bool cache, bool batch,
                        const std::vector<std::string>& trace) {
  double best = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    best = std::max(best, TimedPass(cache, batch, trace));
  }
  return best;
}

void ReportSummary() {
  auto trace = MakeTrace(65536, 8, 7);
  double cold = QueriesPerSecond(false, false, trace);
  double hit = QueriesPerSecond(true, false, trace);
  double batched = QueriesPerSecond(true, true, trace);
  std::printf("#KV threads %zu\n", GetThreadCount());
  std::printf("#KV cold_parse_qps %.0f\n", cold);
  std::printf("#KV cache_hit_qps %.0f\n", hit);
  std::printf("#KV batch_qps %.0f\n", batched);
  std::printf("#KV hit_over_cold_speedup %.2f\n", hit / cold);
  std::printf("#KV batch_over_perquery_speedup %.2f\n", batched / hit);
  std::printf(
      "ingest summary (%zu arrivals, %zu templates): cold %.0f q/s, "
      "cache-hit %.0f q/s (%.1fx), batched %.0f q/s (%.1fx over per-query)\n",
      trace.size(), kDistinct, cold, hit, hit / cold, batched, batched / hit);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ReportSummary();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

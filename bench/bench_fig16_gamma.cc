// Figure 16 (Appendix C): HYBRID gamma sensitivity — actual vs predicted
// Admissions arrival rates around the year-2 deadlines with the KR
// override threshold gamma at 100%, 150%, and 200%. All three capture the
// major spikes; lower gamma uses KR more often (more spike sensitivity,
// more false positives on quiet days).
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"
#include "math/stats.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

Matrix SubMatrix(const Matrix& m, size_t rows) {
  Matrix out(rows, m.cols());
  for (size_t i = 0; i < rows; ++i) out.SetRow(i, m.Row(i));
  return out;
}

}  // namespace

int main() {
  PrintHeader("Figure 16: HYBRID gamma sensitivity",
              "Appendix C Figure 16 (gamma = 100% / 150% / 200%)");

  auto workload = MakeAdmissions({.seed = 9, .volume_scale = 0.5});
  PreProcessor pre;
  Timestamp feed_end = 725 * kSecondsPerDay;
  workload.FeedAggregated(pre, 0, feed_end, kSecondsPerHour, 2).ok();
  TimeSeries total = TotalSeries(pre, kSecondsPerHour, 0, feed_end);

  // ENSEMBLE inputs: last day; KR inputs: three weeks (Section 6.2).
  const size_t kSmoothWindow = 24;
  const size_t kKrWindow = 21 * 24;
  const size_t kHorizon = 7 * 24;
  Timestamp eval_from = 680 * kSecondsPerDay;
  auto ds_smooth = BuildDataset({total}, kSmoothWindow, kHorizon);
  auto ds_kr = BuildDataset({total}, kKrWindow, kHorizon);
  if (!ds_smooth.ok() || !ds_kr.ok()) {
    std::printf("dataset failed\n");
    return 1;
  }
  const size_t kRowShift = kKrWindow - kSmoothWindow;
  size_t eval_start_kr =
      static_cast<size_t>(eval_from / kSecondsPerHour) - kKrWindow - kHorizon + 1;

  Matrix smooth_x = SubMatrix(ds_smooth->x, eval_start_kr + kRowShift);
  Matrix smooth_y = SubMatrix(ds_smooth->y, eval_start_kr + kRowShift);
  Matrix kr_x = SubMatrix(ds_kr->x, eval_start_kr);
  Matrix kr_y = SubMatrix(ds_kr->y, eval_start_kr);

  ModelOptions opts;
  opts.num_series = 1;
  opts.hidden_dim = FastMode() ? 8 : 16;
  opts.embedding_dim = 8;
  opts.num_layers = 1;
  opts.max_epochs = FastMode() ? 8 : 20;
  auto lr = std::make_shared<LinearRegressionModel>(opts);
  auto rnn = std::make_shared<RnnModel>(opts);
  auto kr = std::make_shared<KernelRegressionModel>(opts);
  if (!lr->Fit(smooth_x, smooth_y).ok() || !rnn->Fit(smooth_x, smooth_y).ok() ||
      !kr->Fit(kr_x, kr_y).ok()) {
    std::printf("fit failed\n");
    return 1;
  }
  auto ensemble = std::make_shared<EnsembleModel>(lr, rnn);

  size_t n = ds_kr->x.rows();
  std::vector<double> actual;
  for (size_t i = eval_start_kr; i < n; i += 24) {
    actual.push_back(std::expm1(ds_kr->y(i, 0)));
  }
  std::printf("\ndaily samples, days 680.., predicting +7 days "
              "(deadlines at 699 and 713):\n\n");
  PrintSparkline("actual", actual);
  PrintSeriesRow("fig16_actual", actual, 0);

  for (double gamma : {1.0, 1.5, 2.0}) {
    HybridModel hybrid(ensemble, kr, gamma);
    std::vector<double> predicted;
    size_t kr_used = 0;
    for (size_t i = eval_start_kr; i < n; i += 24) {
      Vector smooth_in = ds_smooth->x.Row(i + kRowShift);
      auto p = hybrid.PredictWithKrInput(smooth_in, ds_kr->x.Row(i));
      double rate =
          p.ok() ? std::max(0.0, std::expm1(std::min((*p)[0], 50.0))) : 0.0;
      predicted.push_back(rate);
      auto e = ensemble->Predict(smooth_in);
      if (e.ok() && rate > std::expm1(std::min((*e)[0], 50.0)) + 1e-6) ++kr_used;
    }
    Vector actual_v(actual.begin(), actual.end());
    Vector pred_v(predicted.begin(), predicted.end());
    std::printf("\n-- gamma = %.0f%% (KR override on %zu/%zu days, log MSE "
                "%.2f) --\n",
                100.0 * gamma, kr_used, predicted.size(),
                LogSpaceMse(actual_v, pred_v));
    PrintSparkline("HYBRID prediction", predicted);
    char name[48];
    std::snprintf(name, sizeof(name), "fig16_gamma%.0f", 100.0 * gamma);
    PrintSeriesRow(name, predicted, 0);
  }
  std::printf("\npaper shape: all gammas capture the major spikes; lower\n"
              "gamma fires the KR override more often.\n");
  return 0;
}

#include "index_experiment.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/qb5000.h"
#include "dbms/loader.h"
#include "sql/parser.h"
#include "tuning/index_advisor.h"

namespace qb5000::bench {
namespace {

/// One controller's state: its database, its index budget, and (for the
/// forecast-driven controllers) its QB5000 instance.
struct Controller {
  std::string name;
  dbms::Database db;
  std::unique_ptr<QueryBot5000> bot;  ///< null for STATIC
  size_t indexes_built = 0;
  std::vector<std::string> built;
};

void BuildIndexes(Controller& controller,
                  const std::vector<std::string>& indexes, size_t budget) {
  for (const auto& index : indexes) {
    if (controller.indexes_built >= budget) break;
    size_t dot = index.find('.');
    if (controller.db.CreateIndex(index.substr(0, dot), index.substr(dot + 1))
            .ok()) {
      ++controller.indexes_built;
      controller.built.push_back(index);
    }
  }
}

/// Builds the advisor workload from a bot's forecast: every template in a
/// modeled cluster, weighted by the cluster's predicted per-hour volume
/// distributed according to each template's share of the cluster's recent
/// volume (QB5000 tracks these intra-cluster ratios, Section 5.3).
std::vector<AdvisorQuery> ForecastWorkload(QueryBot5000& bot, Timestamp now) {
  std::vector<AdvisorQuery> out;
  auto f1 = bot.Forecast(now, kSecondsPerHour);
  auto f12 = bot.Forecast(now, 12 * kSecondsPerHour);
  if (!f1.ok()) return out;
  for (size_t i = 0; i < f1->clusters.size(); ++i) {
    double weight = 0.7 * f1->queries_per_interval[i];
    if (f12.ok() && i < f12->queries_per_interval.size()) {
      weight += 0.3 * f12->queries_per_interval[i];
    }
    auto cluster_it = bot.clusterer().clusters().find(f1->clusters[i]);
    if (cluster_it == bot.clusterer().clusters().end()) continue;
    const auto& members = cluster_it->second.members;
    if (members.empty()) continue;
    // Recent per-template volumes within this cluster.
    std::vector<std::pair<TemplateId, double>> shares;
    double cluster_recent = 0;
    double cluster_last_hour = 0;
    for (TemplateId member : members) {
      const auto* info = bot.preprocessor().GetTemplate(member);
      if (info == nullptr) continue;
      auto recent =
          info->history.Series(kSecondsPerHour, now - kSecondsPerDay, now);
      double volume = recent.ok() ? recent->Total() : 0.0;
      shares.emplace_back(member, volume);
      cluster_recent += volume;
      if (recent.ok() && !recent->values().empty()) {
        cluster_last_hour += recent->values().back();
      }
    }
    // Cold-start floor: a model trained before a workload shift predicts
    // ~zero for a freshly active cluster; the controller must still plan
    // for traffic it is demonstrably receiving right now.
    weight = std::max(weight, cluster_last_hour);
    for (const auto& [member, volume] : shares) {
      const auto* info = bot.preprocessor().GetTemplate(member);
      auto stmt = sql::Parse(info->text);
      if (!stmt.ok()) continue;
      double share = cluster_recent > 0
                         ? volume / cluster_recent
                         : 1.0 / static_cast<double>(shares.size());
      AdvisorQuery query;
      query.stmt = std::make_shared<sql::Statement>(std::move(*stmt));
      query.weight = weight * share;
      out.push_back(std::move(query));
    }
  }
  return out;
}

/// Historical workload sample for STATIC: every known template weighted by
/// its total past volume.
std::vector<AdvisorQuery> HistoricalWorkload(const PreProcessor& pre) {
  std::vector<AdvisorQuery> out;
  for (TemplateId id : pre.TemplateIds()) {
    const auto* info = pre.GetTemplate(id);
    if (info == nullptr) continue;
    auto stmt = sql::Parse(info->text);
    if (!stmt.ok()) continue;
    AdvisorQuery query;
    query.stmt = std::make_shared<sql::Statement>(std::move(*stmt));
    query.weight = info->total_queries;
    out.push_back(std::move(query));
  }
  return out;
}

struct Measurement {
  double qps = 0;
  double p99_ms = 0;
};

Measurement Measure(dbms::Database& db, const std::vector<TraceEvent>& events) {
  Measurement m;
  if (events.empty()) return m;
  std::vector<double> latencies;
  double total_us = 0;
  for (const auto& event : events) {
    auto result = db.Execute(event.sql);
    if (!result.ok()) continue;
    latencies.push_back(result->latency_us);
    total_us += result->latency_us;
  }
  if (latencies.empty()) return m;
  m.qps = static_cast<double>(latencies.size()) / (total_us / 1e6);
  std::sort(latencies.begin(), latencies.end());
  m.p99_ms = latencies[static_cast<size_t>(0.99 * (latencies.size() - 1))] / 1000.0;
  return m;
}

QueryBot5000::Config BotConfig(OnlineClusterer::FeatureMode mode, double rho) {
  QueryBot5000::Config config;
  config.clusterer.feature_mode = mode;
  config.clusterer.rho = rho;
  config.clusterer.feature.num_samples = FastMode() ? 128 : 256;
  config.clusterer.feature.window_seconds = 7 * kSecondsPerDay;
  config.forecaster.kind = ModelKind::kLr;  // controllers retrain hourly
  config.forecaster.interval_seconds = kSecondsPerHour;
  config.forecaster.input_window = 24;
  config.forecaster.training_window_seconds = 14 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour, 12 * kSecondsPerHour};
  // The paper models the three largest clusters on a mature workload; our
  // controllers track five, ranked over a recent window, so a shifting
  // workload's rising clusters enter the modeled set within hours.
  config.max_modeled_clusters = 5;
  config.coverage_target = 0.999;  // rising clusters are small but matter
  config.clusterer.volume_window_seconds = 6 * kSecondsPerHour;
  config.maintenance_period_seconds = kSecondsPerHour;
  return config;
}

}  // namespace

int RunIndexSelectionExperiment(const SyntheticWorkload& workload,
                                const IndexExperimentOptions& options) {
  // Identical databases for the three controllers.
  Controller controllers[3];
  controllers[0].name = "AUTO";
  controllers[1].name = "STATIC";
  controllers[2].name = "AUTO-LOGICAL";
  for (auto& controller : controllers) {
    Rng rng(options.seed);  // same seed -> identical table contents
    if (!dbms::LoadWorkloadSchema(controller.db, workload, rng,
                                  options.row_scale)
             .ok()) {
      std::printf("schema load failed\n");
      return 1;
    }
  }

  // Forecast-driven controllers learn from three weeks of history.
  Timestamp history_from = options.t0 - 21 * kSecondsPerDay;
  controllers[0].bot = std::make_unique<QueryBot5000>(
      BotConfig(OnlineClusterer::FeatureMode::kArrivalRate, 0.8));
  controllers[2].bot = std::make_unique<QueryBot5000>(
      BotConfig(OnlineClusterer::FeatureMode::kLogical, options.logical_rho));
  PreProcessor static_history;
  workload
      .FeedAggregated(static_history, history_from, options.t0,
                      10 * kSecondsPerMinute, options.seed + 1)
      .ok();
  for (int c : {0, 2}) {
    workload
        .FeedAggregated(controllers[c].bot->mutable_preprocessor(), history_from,
                        options.t0, 10 * kSecondsPerMinute, options.seed + 1)
        .ok();
    controllers[c].bot->RunMaintenance(options.t0, /*force=*/true).ok();
  }

  // STATIC builds its whole budget up front from the history sample.
  auto static_sample = HistoricalWorkload(static_history);
  auto static_rec = IndexAdvisor::Recommend(controllers[1].db, static_sample,
                                            options.total_indexes);
  if (static_rec.ok()) {
    BuildIndexes(controllers[1], *static_rec, options.total_indexes);
  }

  size_t per_hour_budget = std::max<size_t>(
      1, (options.total_indexes + options.hours - 1) /
             static_cast<size_t>(options.hours));

  std::printf("\n%5s | %27s | %27s | %27s\n", "", "AUTO", "STATIC",
              "AUTO-LOGICAL");
  std::printf("%5s | %10s %9s %5s | %10s %9s %5s | %10s %9s %5s\n", "hour",
              "qps", "p99(ms)", "idx", "qps", "p99(ms)", "idx", "qps",
              "p99(ms)", "idx");
  std::printf("--------------------------------------------------------------"
              "--------------------------------\n");

  Measurement last[3];
  std::vector<std::array<double, 3>> qps_rows;
  for (int hour = 0; hour < options.hours; ++hour) {
    Timestamp now = options.t0 + static_cast<Timestamp>(hour) * kSecondsPerHour;

    // Forecast-driven controllers: ingest the live hour, re-train, advise.
    for (int c : {0, 2}) {
      Controller& controller = controllers[c];
      workload
          .FeedAggregated(controller.bot->mutable_preprocessor(),
                          now, now + kSecondsPerHour, 10 * kSecondsPerMinute,
                          options.seed + 1)
          .ok();
      controller.bot->RunMaintenance(now + kSecondsPerHour, /*force=*/true).ok();
      if (controller.indexes_built < options.total_indexes) {
        auto predicted = ForecastWorkload(*controller.bot, now + kSecondsPerHour);
        if (!predicted.empty()) {
          auto recommendation = IndexAdvisor::Recommend(
              controller.db, predicted,
              std::min(per_hour_budget,
                       options.total_indexes - controller.indexes_built));
          if (recommendation.ok()) {
            BuildIndexes(controller, *recommendation, options.total_indexes);
          }
        }
      }
    }

    // Measure all three databases on the same materialized replay slice.
    auto events = workload.Materialize(now, now + kSecondsPerHour,
                                       10 * kSecondsPerMinute,
                                       options.seed + 100 + hour,
                                       options.replay_scale);
    std::printf("%5d |", hour);
    std::array<double, 3> row{};
    for (int c = 0; c < 3; ++c) {
      last[c] = Measure(controllers[c].db, events);
      row[static_cast<size_t>(c)] = last[c].qps;
      std::printf(" %10.0f %9.2f %5zu |", last[c].qps, last[c].p99_ms,
                  controllers[c].indexes_built);
    }
    qps_rows.push_back(row);
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\nfinal index sets:\n");
  for (const auto& controller : controllers) {
    std::printf("  %-13s:", controller.name.c_str());
    for (const auto& index : controller.built) std::printf(" %s", index.c_str());
    std::printf("\n");
  }
  // End-of-run comparison over the final quarter of the run (per-hour
  // replay mixes are noisy; the paper reads its figures the same way).
  size_t tail = std::max<size_t>(1, qps_rows.size() / 4);
  double mean[3] = {0, 0, 0};
  for (size_t i = qps_rows.size() - tail; i < qps_rows.size(); ++i) {
    for (int c = 0; c < 3; ++c) mean[c] += qps_rows[i][static_cast<size_t>(c)];
  }
  for (double& m : mean) m /= static_cast<double>(tail);
  std::printf("\nend-of-run comparison (mean of last %zu h): AUTO %.0f qps vs "
              "STATIC %.0f qps (AUTO at %.0f%%) vs AUTO-LOGICAL %.0f qps "
              "(%.0f%% of AUTO)\n",
              tail, mean[0], mean[1],
              mean[1] > 0 ? 100.0 * mean[0] / mean[1] : 0.0, mean[2],
              mean[0] > 0 ? 100.0 * mean[2] / mean[0] : 0.0);
  return 0;
}

}  // namespace qb5000::bench

// Figure 11: Index Selection (MySQL / Admissions) — throughput and p99
// latency of the Admissions workload replayed against the mini-DBMS under
// AUTO (forecast-driven), STATIC (history-driven, prebuilt), and
// AUTO-LOGICAL (logical-feature clusters) index selection.
//
// The experiment starts on the first application deadline (day 334): the
// workload then shifts from applicant-driven growth queries to faculty
// review queries, which is exactly the shift a forecast-driven controller
// can exploit and a static (pre-deadline) history sample cannot.
//
// Paper shapes: AUTO starts below STATIC (no indexes yet), overtakes or
// matches it by the end; AUTO-LOGICAL trails AUTO by ~20% throughput.
#include "bench_util.h"
#include "index_experiment.h"

using namespace qb5000;
using namespace qb5000::bench;

int main() {
  PrintHeader("Figure 11: Index Selection (Admissions / 'MySQL')",
              "Figure 11 (AUTO vs STATIC vs AUTO-LOGICAL)");
  IndexExperimentOptions options;
  options.t0 = 334 * kSecondsPerDay;  // first deadline day (spike at +12 h)
  // The paper replays 16 hours at 600x; we extend to 36 trace-hours so the
  // post-deadline shift to faculty-review queries (which starts at +12 h)
  // has time to enter the top modeled clusters.
  options.hours = FastMode() ? 20 : 36;
  options.total_indexes = 8;  // paper builds 20 on a 216-table schema;
                              // scaled to our 8-table schema (DESIGN.md)
  options.row_scale = FastMode() ? 0.1 : 0.25;
  options.replay_scale = FastMode() ? 0.004 : 0.01;
  options.seed = 501;
  return RunIndexSelectionExperiment(MakeAdmissions({.seed = 7}), options);
}

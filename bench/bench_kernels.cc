// Kernel and parallel-scaling microbenchmarks for the forecasting engine
// (DESIGN.md §9): the cache-blocked GEMM vs the seed's naive triple loop,
// transposed-B and batched variants, MatVec, one batched LSTM training
// epoch, and the end-to-end Table 4 retrain at 1 vs N threads.
//
// Lines prefixed "#KV key value" are machine-readable; tools/bench_to_json.py
// collects them (plus the google-benchmark JSON) into BENCH_kernels.json.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "forecaster/dataset.h"
#include "forecaster/forecaster.h"
#include "forecaster/neural.h"
#include "math/kernels.h"
#include "math/matrix.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

/// The growth seed's Matrix::MatMul, kept verbatim for comparison: naive
/// i-k-j loops with a zero-skip branch in the inner loop.
Matrix SeedMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      double av = a(i, k);
      if (av == 0.0) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += av * b(k, j);
      }
    }
  }
  return out;
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.mutable_data()) v = rng.Gaussian();
  return m;
}

void BM_GemmSeed(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    Matrix c = SeedMatMul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmSeed)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    MatMulInto(a, b, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTransB(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(n, n, 1);
  Matrix bt = RandomMatrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    MatMulTransBInto(a, bt, c);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmTransB)->Arg(256);

void BM_MatVec(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(n, n, 1);
  Vector x(n, 0.5);
  Vector y(n, 0.0);
  for (auto _ : state) {
    MatVecInto(a, x, y);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
}
BENCHMARK(BM_MatVec)->Arg(256)->Arg(1024);

void BM_BatchedGemm(benchmark::State& state) {
  SetThreadCount(static_cast<size_t>(state.range(0)));
  constexpr size_t kProblems = 16;
  constexpr size_t kDim = 96;
  std::vector<Matrix> as, bs, cs;
  for (size_t i = 0; i < kProblems; ++i) {
    as.push_back(RandomMatrix(kDim, kDim, 2 * i));
    bs.push_back(RandomMatrix(kDim, kDim, 2 * i + 1));
    cs.emplace_back(kDim, kDim);
  }
  std::vector<GemmProblem> problems;
  for (size_t i = 0; i < kProblems; ++i) {
    problems.push_back({&as[i], &bs[i], &cs[i]});
  }
  for (auto _ : state) {
    BatchedMatMulInto(problems);
    benchmark::DoNotOptimize(cs);
  }
  SetThreadCount(1);
}
BENCHMARK(BM_BatchedGemm)->Arg(1)->Arg(4);

/// One LSTM training run (fixed small epoch count) at the given thread
/// count, on a synthetic dataset shaped like the paper's (num_series 5,
/// window 24).
void BM_LstmTrain(benchmark::State& state) {
  SetThreadCount(static_cast<size_t>(state.range(0)));
  size_t num_series = 5;
  size_t window = 24;
  size_t rows = FastMode() ? 96 : 256;
  Matrix x = RandomMatrix(rows, window * num_series, 3);
  Matrix y = RandomMatrix(rows, num_series, 4);
  ModelOptions opts;
  opts.num_series = num_series;
  opts.max_epochs = 2;
  for (auto _ : state) {
    RnnModel rnn(opts);
    benchmark::DoNotOptimize(rnn.Fit(x, y));
  }
  SetThreadCount(1);
}
BENCHMARK(BM_LstmTrain)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// --- Acceptance-criteria report --------------------------------------------

template <typename Fn>
double TimeBest(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

/// Times one full Forecaster::Train (the Table 4 "retrain" path: HYBRID =
/// LR + LSTM + KR per horizon) at `threads`.
double RetrainSeconds(const PreparedWorkload& prepared, size_t threads) {
  SetThreadCount(threads);
  auto clusters = prepared.clusterer.TopClustersByVolume(5);
  Forecaster::Options options;
  options.model.max_epochs = FastMode() ? 2 : 6;
  Forecaster forecaster(options);
  Stopwatch timer;
  Status st = forecaster.Train(prepared.pre, prepared.clusterer, clusters,
                               prepared.end,
                               {kSecondsPerHour, 12 * kSecondsPerHour});
  double elapsed = timer.ElapsedSeconds();
  SetThreadCount(1);
  if (!st.ok()) {
    std::printf("retrain failed: %s\n", std::string(st.message()).c_str());
    return 0.0;
  }
  return elapsed;
}

void AcceptanceReport() {
  std::printf("\n--- kernel & scaling acceptance numbers ---\n");
  size_t hw = SetThreadCount(0);
  SetThreadCount(1);
  std::printf("#KV hardware_concurrency %zu\n", hw);

  // Single-thread GEMM speedup over the seed kernel at 256x256.
  constexpr size_t kN = 256;
  Matrix a = RandomMatrix(kN, kN, 1);
  Matrix b = RandomMatrix(kN, kN, 2);
  Matrix c(kN, kN);
  int reps = FastMode() ? 3 : 5;
  double seed_s = TimeBest(reps, [&] {
    Matrix out = SeedMatMul(a, b);
    benchmark::DoNotOptimize(out);
  });
  double blocked_s = TimeBest(reps, [&] {
    MatMulInto(a, b, c);
    benchmark::DoNotOptimize(c);
  });
  std::printf("#KV gemm256_seed_seconds %.6f\n", seed_s);
  std::printf("#KV gemm256_blocked_seconds %.6f\n", blocked_s);
  std::printf("#KV gemm256_speedup %.2f\n", seed_s / blocked_s);

  // End-to-end retrain scaling, 1 thread vs 4.
  auto prepared =
      Prepare(MakeBusTracker(), FastMode() ? 4 : 7, 10 * kSecondsPerMinute);
  double retrain_1t = RetrainSeconds(prepared, 1);
  double retrain_4t = RetrainSeconds(prepared, 4);
  std::printf("#KV retrain_1t_seconds %.3f\n", retrain_1t);
  std::printf("#KV retrain_4t_seconds %.3f\n", retrain_4t);
  if (retrain_4t > 0.0) {
    std::printf("#KV retrain_scaling_4t %.2f\n", retrain_1t / retrain_4t);
  }
  std::printf(
      "\nnote: retrain scaling needs >= 4 hardware threads to show; on a\n"
      "single-core host the 4-thread run measures scheduling overhead, not\n"
      "speedup. gemm256_speedup is thread-independent.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("Kernel & parallel-scaling microbenchmarks",
              "Table 4 (training cost); DESIGN.md §9");
  SetThreadCount(1);  // google-benchmark timings below are single-thread
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  AcceptanceReport();
  return 0;
}

// Figure 7: Forecasting Model Evaluation — average prediction accuracy
// (log-space MSE; lower is better) of LR, KR, ARMA, FNN, RNN, PSRNN,
// ENSEMBLE and HYBRID over horizons from 1 hour to 1 week on the three
// workloads, with the top clusters (>= 95% coverage) modeled jointly.
//
// Expected shape (paper): LR competitive at short horizons; RNN overtakes
// at >= 1 day; ENSEMBLE best overall and never worst; ARMA unstable;
// HYBRID ~= ENSEMBLE on average accuracy.
#include <cstdio>
#include <map>
#include <memory>

#include "bench_util.h"
#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"
#include "math/stats.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

struct HorizonSpec {
  const char* label;
  int hours;
};

constexpr HorizonSpec kHorizons[] = {{"1 Hour", 1},  {"12 Hour", 12},
                                     {"1 Day", 24},  {"2 Days", 48},
                                     {"3 Days", 72}, {"5 Days", 120},
                                     {"1 Week", 168}};

Matrix SubMatrix(const Matrix& m, size_t rows) {
  Matrix out(rows, m.cols());
  for (size_t i = 0; i < rows; ++i) out.SetRow(i, m.Row(i));
  return out;
}

ModelOptions NeuralOptions(size_t num_series) {
  ModelOptions opts;
  opts.num_series = num_series;
  if (FastMode()) {
    opts.hidden_dim = 10;
    opts.embedding_dim = 8;
    opts.num_layers = 1;
    opts.max_epochs = 12;
    opts.patience = 4;
  } else {
    opts.hidden_dim = 20;   // paper: two LSTM layers of 20 cells
    opts.embedding_dim = 25;  // paper: embedding of size 25
    opts.num_layers = 2;
    opts.max_epochs = 40;
    opts.patience = 6;
  }
  return opts;
}

/// Trains every base model once and scores all eight entries per horizon.
std::map<std::string, double> EvaluateWorkload(
    const std::vector<TimeSeries>& series, int horizon_hours) {
  std::map<std::string, double> mse;
  const size_t kWindow = 24;
  size_t steps = static_cast<size_t>(horizon_hours);
  auto dataset = BuildDataset(series, kWindow, steps);
  if (!dataset.ok()) return mse;
  size_t n = dataset->x.rows();
  size_t train_n = static_cast<size_t>(0.7 * static_cast<double>(n));
  if (train_n < 8 || train_n >= n) return mse;
  Matrix train_x = SubMatrix(dataset->x, train_n);
  Matrix train_y = SubMatrix(dataset->y, train_n);

  ModelOptions opts = NeuralOptions(series.size());
  auto lr = std::make_shared<LinearRegressionModel>(opts);
  auto arma = std::make_shared<ArmaModel>(opts);
  auto kr = std::make_shared<KernelRegressionModel>(opts);
  auto fnn = std::make_shared<FnnModel>(opts);
  auto rnn = std::make_shared<RnnModel>(opts);
  auto psrnn = std::make_shared<PsrnnModel>(opts);
  std::map<std::string, std::shared_ptr<ForecastModel>> models = {
      {"LR", lr},   {"ARMA", arma},   {"KR", kr},
      {"FNN", fnn}, {"RNN", rnn},     {"PSRNN", psrnn}};
  for (auto& [name, model] : models) {
    if (!model->Fit(train_x, train_y).ok()) return mse;
  }
  auto ensemble = std::make_shared<EnsembleModel>(lr, rnn);
  auto hybrid = std::make_shared<HybridModel>(ensemble, kr, /*gamma=*/1.5);
  models["ENSEMBLE"] = ensemble;
  models["HYBRID"] = hybrid;

  for (auto& [name, model] : models) {
    Vector actual, predicted;
    bool ok = true;
    for (size_t i = train_n; i < n; ++i) {
      auto pred = model->Predict(dataset->x.Row(i));
      if (!pred.ok()) {
        ok = false;
        break;
      }
      Vector pred_rates = ToArrivalRates(*pred);
      Vector actual_rates = ToArrivalRates(dataset->y.Row(i));
      for (size_t j = 0; j < pred_rates.size(); ++j) {
        predicted.push_back(pred_rates[j]);
        actual.push_back(actual_rates[j]);
      }
    }
    if (ok) mse[name] = LogSpaceMse(actual, predicted);
  }
  return mse;
}

void RunWorkload(const char* name, SyntheticWorkload workload, int start_day,
                 int days) {
  PreProcessor pre;
  Timestamp from = static_cast<Timestamp>(start_day) * kSecondsPerDay;
  Timestamp to = static_cast<Timestamp>(start_day + days) * kSecondsPerDay;
  workload.FeedAggregated(pre, from, to, 10 * kSecondsPerMinute, 1).ok();
  OnlineClusterer::Options copts;
  copts.feature.num_samples = FastMode() ? 128 : 384;
  copts.feature.window_seconds = 7 * kSecondsPerDay;
  OnlineClusterer clusterer(copts);
  clusterer.Update(pre, to);

  // Top clusters covering >= 95% of volume, at most 5 (Section 7.2).
  auto top = clusterer.TopClustersByVolume(5);
  double total = clusterer.TotalVolume();
  std::vector<TimeSeries> series;
  double covered = 0;
  for (ClusterId id : top) {
    auto center = clusterer.CenterSeries(pre, id, kSecondsPerHour, from, to);
    if (!center.ok()) continue;
    series.push_back(std::move(*center));
    covered += clusterer.clusters().at(id).volume;
    if (total > 0 && covered / total >= 0.95) break;
  }
  std::printf("\n(%s) modeling %zu clusters, %.1f%% coverage\n", name,
              series.size(), total > 0 ? 100.0 * covered / total : 0.0);
  const char* kModels[] = {"LR",  "KR",    "ARMA",     "FNN",
                           "RNN", "PSRNN", "ENSEMBLE", "HYBRID"};
  std::printf("%-9s", "horizon");
  for (const char* model : kModels) std::printf(" %9s", model);
  std::printf("\n");
  for (const auto& horizon : kHorizons) {
    if (FastMode() && horizon.hours > 72) continue;
    auto mse = EvaluateWorkload(series, horizon.hours);
    std::printf("%-9s", horizon.label);
    for (const char* model : kModels) {
      auto it = mse.find(model);
      if (it == mse.end()) {
        std::printf(" %9s", "-");
      } else {
        std::printf(" %9.2f", it->second);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 7: Forecasting Model Evaluation",
              "Figure 7 (log MSE across 7 horizons x 8 models x 3 workloads)");
  int days = FastMode() ? 21 : 35;
  // Admissions evaluated in its growth window leading into the deadline.
  RunWorkload("Admissions", MakeAdmissions(), 320 - days, days);
  RunWorkload("BusTracker", MakeBusTracker(), 0, days);
  RunWorkload("MOOC", MakeMooc(), 46, days);
  std::printf(
      "\npaper shapes to check: LR best/tied at <= 12 h; RNN beats LR at >= 1\n"
      "day; ENSEMBLE lowest on average and never worst; HYBRID ~= ENSEMBLE.\n");
  return 0;
}

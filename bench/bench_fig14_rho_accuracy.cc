// Figure 14 (Appendix A): Prediction Accuracy vs rho — one-hour-horizon
// forecast accuracy of the three largest clusters as rho sweeps 0.5..0.9.
// Expected shape: accuracy improves with rho (tighter clusters -> centers
// represent members better).
#include <cstdio>

#include "bench_util.h"
#include "forecaster/evaluation.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

double AccuracyAtRho(const SyntheticWorkload& workload, int days, double rho) {
  auto prepared = Prepare(workload, days, 10 * kSecondsPerMinute, rho);
  auto series =
      TopClusterSeries(prepared, /*coverage=*/1.1, 3, kSecondsPerHour, 0,
                       prepared.end);  // exactly the top-3
  if (series.empty()) return 0;
  ModelOptions opts;  // LR: the paper's short-horizon workhorse
  auto eval = EvaluateModel(ModelKind::kLr, series, 24, 1, 0.7, opts);
  return eval.ok() ? eval->log_mse : 0;
}

}  // namespace

int main() {
  PrintHeader("Figure 14: Prediction Accuracy vs rho",
              "Appendix A Figure 14 (1-hour-horizon log MSE across rho)");
  int days = FastMode() ? 10 : 21;
  const double kRhos[] = {0.5, 0.6, 0.7, 0.8, 0.9};
  std::printf("%-11s", "workload");
  for (double rho : kRhos) std::printf("  rho=%.1f", rho);
  std::printf("\n--------------------------------------------------\n");
  struct Job {
    const char* name;
    SyntheticWorkload workload;
  } jobs[] = {{"Admissions", MakeAdmissions()},
              {"BusTracker", MakeBusTracker()},
              {"MOOC", MakeMooc()}};
  for (auto& job : jobs) {
    std::printf("%-11s", job.name);
    for (double rho : kRhos) {
      std::printf("  %7.2f", AccuracyAtRho(job.workload, days, rho));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\npaper shape: log MSE decreases (improves) as rho rises —\n"
              "tighter clusters give centers that better represent members.\n");
  return 0;
}

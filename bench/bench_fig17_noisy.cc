// Figure 17 (Appendix D): Predicting Noisy Workloads — the OLTP-Bench
// composite: eight benchmarks executed back-to-back (10 hours each) with
// 50%-variance white noise and injected anomalies. QB5000 re-clusters when
// it detects the shift (new-template trigger) and keeps predicting the
// average volume; individual noise is unpredictable by construction.
#include <cstdio>

#include "bench_util.h"
#include "core/qb5000.h"
#include "math/stats.h"

using namespace qb5000;
using namespace qb5000::bench;

int main() {
  PrintHeader("Figure 17: Predicting Noisy Workloads",
              "Appendix D Figure 17 (OLTP-Bench composite, 1-h horizon)");

  auto workload = MakeNoisyComposite({.seed = 6});
  QueryBot5000::Config config;
  config.clusterer.feature.num_samples = FastMode() ? 96 : 192;
  config.clusterer.feature.window_seconds = kSecondsPerDay;
  config.clusterer.new_template_trigger_ratio = 0.1;
  // Rank clusters by the last few hours so the freshly-active benchmark's
  // clusters are the ones modeled right after a shift.
  config.clusterer.volume_window_seconds = 4 * kSecondsPerHour;
  config.forecaster.kind = ModelKind::kLr;  // short horizon, short history
  config.forecaster.interval_seconds = 30 * kSecondsPerMinute;
  config.forecaster.input_window = 6;  // three hours of context
  config.forecaster.training_window_seconds = 12 * kSecondsPerHour;
  // Heavy ridge: within a benchmark segment the right answer is "predict
  // the current level"; strong regularization keeps LR from extrapolating
  // across segment boundaries it has never seen.
  config.forecaster.model.ridge_lambda = 2.0;
  config.horizons = {kSecondsPerHour};
  config.maintenance_period_seconds = 2 * kSecondsPerHour;
  config.max_modeled_clusters = 5;
  config.coverage_target = 0.99;
  QueryBot5000 bot(config);

  Timestamp end = 80 * kSecondsPerHour;
  std::vector<double> actual, predicted;
  std::vector<int> shift_marks;
  PreProcessor reference;  // independent full view for the actual series
  workload.FeedAggregated(reference, 0, end, 10 * kSecondsPerMinute, 3).ok();
  TimeSeries actual_total =
      TotalSeries(reference, 30 * kSecondsPerMinute, 0, end);

  // Walk the trace: ingest each 30-minute slice, run maintenance (which
  // fires on the benchmark shifts via the new-template trigger), forecast
  // one hour ahead.
  int64_t step = 30 * kSecondsPerMinute;
  for (Timestamp now = 0; now + kSecondsPerHour < end; now += step) {
    workload
        .FeedAggregated(bot.mutable_preprocessor(), now, now + step,
                        10 * kSecondsPerMinute, 3)
        .ok();
    if (bot.clusterer().ShouldTrigger(bot.preprocessor())) {
      shift_marks.push_back(static_cast<int>(actual.size()));
    }
    bot.RunMaintenance(now + step).ok();
    if (now < 6 * kSecondsPerHour) continue;  // warm-up
    auto forecast = bot.Forecast(now + step, kSecondsPerHour);
    double predicted_total = 0;
    if (forecast.ok()) {
      for (double v : forecast->queries_per_interval) predicted_total += v;
    }
    predicted.push_back(predicted_total);
    actual.push_back(actual_total.ValueAt(now + step + kSecondsPerHour));
  }

  std::printf("\n30-minute samples, 1-hour-ahead predicted vs actual total "
              "volume\n(benchmark switches every 10 h; %zu re-cluster "
              "triggers fired):\n\n",
              shift_marks.size());
  PrintSparkline("actual", actual);
  PrintSparkline("predicted", predicted);
  PrintSeriesRow("fig17_actual", actual, 0);
  PrintSeriesRow("fig17_predicted", predicted, 0);

  Vector actual_v(actual.begin(), actual.end());
  Vector pred_v(predicted.begin(), predicted.end());
  std::printf("\nlog MSE %.2f; mean actual %.0f vs mean predicted %.0f per "
              "30 min\n",
              LogSpaceMse(actual_v, pred_v), Mean(actual_v), Mean(pred_v));
  std::printf("\npaper shape: predictions track each benchmark's average\n"
              "volume and re-lock quickly after every shift; the injected\n"
              "noise and anomalies remain unpredictable (as intended).\n");
  return 0;
}

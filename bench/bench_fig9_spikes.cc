// Figure 9: Spike Prediction — actual vs predicted Admissions arrival
// rates around the annual application deadlines, one week ahead, for LR,
// KR, RNN, and ENSEMBLE. Per the paper, LR/RNN/ENSEMBLE take the last
// day's arrival rates as input while KR is trained on the full multi-year
// history with three-week windows at one-hour intervals (Section 6.2) —
// only KR should anticipate the deadline spikes.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "forecaster/dataset.h"
#include "forecaster/ensemble.h"
#include "forecaster/kernel_regression.h"
#include "forecaster/linear.h"
#include "forecaster/neural.h"
#include "math/stats.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

Matrix SubMatrix(const Matrix& m, size_t rows) {
  Matrix out(rows, m.cols());
  for (size_t i = 0; i < rows; ++i) out.SetRow(i, m.Row(i));
  return out;
}

}  // namespace

int main() {
  PrintHeader("Figure 9: Spike Prediction (Admissions)",
              "Figure 9 (LR / KR / RNN / ENSEMBLE around the deadlines)");

  // Two full years so the year-1 deadlines (days 334, 348) are training
  // data for predicting the year-2 deadlines (days 699, 713).
  auto workload = MakeAdmissions({.seed = 9, .volume_scale = 0.5});
  PreProcessor pre;
  Timestamp feed_end = 725 * kSecondsPerDay;
  workload.FeedAggregated(pre, 0, feed_end, kSecondsPerHour, 2).ok();
  TimeSeries total = TotalSeries(pre, kSecondsPerHour, 0, feed_end);

  // Two input encodings over the same series and horizon:
  //   * smooth models: last day (24 hourly rates),
  //   * KR: three weeks (504 hourly rates).
  const size_t kSmoothWindow = 24;
  const size_t kKrWindow = 21 * 24;
  const size_t kHorizon = 7 * 24;
  Timestamp eval_from = 680 * kSecondsPerDay;
  auto ds_smooth = BuildDataset({total}, kSmoothWindow, kHorizon);
  auto ds_kr = BuildDataset({total}, kKrWindow, kHorizon);
  if (!ds_smooth.ok() || !ds_kr.ok()) {
    std::printf("dataset failed\n");
    return 1;
  }
  // ds_kr row i targets index i + kKrWindow + kHorizon - 1; the ds_smooth
  // row with the same target is i + (kKrWindow - kSmoothWindow).
  const size_t kRowShift = kKrWindow - kSmoothWindow;
  size_t eval_start_kr =
      static_cast<size_t>(eval_from / kSecondsPerHour) - kKrWindow - kHorizon + 1;

  Matrix smooth_x = SubMatrix(ds_smooth->x, eval_start_kr + kRowShift);
  Matrix smooth_y = SubMatrix(ds_smooth->y, eval_start_kr + kRowShift);
  Matrix kr_x = SubMatrix(ds_kr->x, eval_start_kr);
  Matrix kr_y = SubMatrix(ds_kr->y, eval_start_kr);

  ModelOptions opts;
  opts.num_series = 1;
  opts.hidden_dim = FastMode() ? 8 : 20;
  opts.embedding_dim = FastMode() ? 8 : 25;
  opts.num_layers = FastMode() ? 1 : 2;
  opts.max_epochs = FastMode() ? 10 : 30;
  auto lr = std::make_shared<LinearRegressionModel>(opts);
  auto rnn = std::make_shared<RnnModel>(opts);
  auto kr = std::make_shared<KernelRegressionModel>(opts);
  if (!lr->Fit(smooth_x, smooth_y).ok() || !rnn->Fit(smooth_x, smooth_y).ok() ||
      !kr->Fit(kr_x, kr_y).ok()) {
    std::printf("fit failed\n");
    return 1;
  }
  auto ensemble = std::make_shared<EnsembleModel>(lr, rnn);

  struct Entry {
    const char* name;
    std::shared_ptr<ForecastModel> model;
    bool uses_kr_window;
  } entries[] = {{"LR", lr, false},
                 {"KR", kr, true},
                 {"RNN", rnn, false},
                 {"ENSEMBLE", ensemble, false}};

  // Walk daily through the eval window, predicting one week out.
  std::vector<double> actual;
  std::vector<std::vector<double>> preds(4);
  size_t n = ds_kr->x.rows();
  for (size_t i = eval_start_kr; i < n; i += 24) {
    actual.push_back(std::expm1(ds_kr->y(i, 0)));
    for (size_t m = 0; m < 4; ++m) {
      Vector input = entries[m].uses_kr_window
                         ? ds_kr->x.Row(i)
                         : ds_smooth->x.Row(i + kRowShift);
      auto p = entries[m].model->Predict(input);
      preds[m].push_back(
          p.ok() ? std::max(0.0, std::min(std::expm1(std::min((*p)[0], 50.0)),
                                          1e12))
                 : 0.0);
    }
  }
  std::printf("\ndaily samples, days 680..%zu, predicting +7 days "
              "(deadlines at 699 and 713):\n\n",
              680 + actual.size() - 1);
  PrintSparkline("actual", actual);
  for (size_t m = 0; m < 4; ++m) PrintSparkline(entries[m].name, preds[m]);
  PrintSeriesRow("fig9_actual", actual, 0);
  for (size_t m = 0; m < 4; ++m) {
    PrintSeriesRow(std::string("fig9_") + entries[m].name, preds[m], 0);
  }

  // Spike capture ratio: predicted/actual on the top-10% volume days.
  double threshold = Quantile(actual, 0.9);
  std::printf("\nspike capture (mean predicted/actual on days with actual >= "
              "%.0f q/h):\n", threshold);
  for (size_t m = 0; m < 4; ++m) {
    double ratio_sum = 0;
    int count = 0;
    for (size_t i = 0; i < actual.size(); ++i) {
      if (actual[i] < threshold || actual[i] <= 0) continue;
      ratio_sum += preds[m][i] / actual[i];
      ++count;
    }
    std::printf("  %-9s %.2f\n", entries[m].name,
                count > 0 ? ratio_sum / count : 0.0);
  }
  std::printf("\npaper shape: only KR captures the deadline spikes; LR, RNN,\n"
              "and ENSEMBLE stay near the smooth baseline.\n");
  return 0;
}

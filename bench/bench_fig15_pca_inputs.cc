// Figure 15 (Appendix B): Input Space Time-Progress — PCA projection of
// the KR model's inputs (three-week hourly windows of the Admissions
// workload) into 3-D. The paper shows December (deadline) windows tracing
// far from the "normal" cloud, and the same dates in consecutive years
// landing near each other — which is why kernel distance can recognize an
// impending annual spike.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "forecaster/dataset.h"
#include "math/linalg.h"
#include "math/stats.h"

using namespace qb5000;
using namespace qb5000::bench;

int main() {
  PrintHeader("Figure 15: Input Space Time-Progress (PCA)",
              "Appendix B Figure 15 (3-D projection of KR inputs)");

  auto workload = MakeAdmissions({.seed = 5});
  PreProcessor pre;
  Timestamp end = 730 * kSecondsPerDay;
  workload.FeedAggregated(pre, 0, end, kSecondsPerHour, 2).ok();
  TimeSeries total = TotalSeries(pre, kSecondsPerHour, 0, end);

  // One KR input per day (daily stride keeps PCA small): the trailing
  // three-week hourly window, log-transformed.
  const size_t kWindow = 21 * 24;
  std::vector<int> days;
  Matrix inputs(0, 0);
  {
    std::vector<Vector> rows;
    for (int day = 30; day < 728; day += 2) {
      Timestamp now = static_cast<Timestamp>(day) * kSecondsPerDay;
      auto window = LatestWindow(
          {total.Slice(now - static_cast<int64_t>(kWindow) * kSecondsPerHour, now)},
          kWindow);
      if (!window.ok()) continue;
      rows.push_back(std::move(*window));
      days.push_back(day);
    }
    inputs = Matrix(rows.size(), kWindow);
    for (size_t i = 0; i < rows.size(); ++i) inputs.SetRow(i, rows[i]);
  }

  auto projection = PcaProject(inputs, 3);
  if (!projection.ok()) {
    std::printf("PCA failed: %s\n", projection.status().ToString().c_str());
    return 1;
  }

  // Distance of each point from the centroid of "normal" (non-December)
  // points, to quantify the paper's visual separation.
  auto is_spike_season = [](int day) {
    int doy = day % 365;
    return doy >= 330 && doy <= 360;
  };
  Vector centroid(3, 0.0);
  int normal_count = 0;
  for (size_t i = 0; i < days.size(); ++i) {
    if (is_spike_season(days[i])) continue;
    for (int c = 0; c < 3; ++c) centroid[c] += (*projection)(i, c);
    ++normal_count;
  }
  for (double& c : centroid) c /= normal_count > 0 ? normal_count : 1;

  double normal_dist = 0, spike_dist = 0;
  int spike_count = 0;
  std::vector<double> dist_series;
  for (size_t i = 0; i < days.size(); ++i) {
    double d = 0;
    for (int c = 0; c < 3; ++c) {
      double diff = (*projection)(i, c) - centroid[c];
      d += diff * diff;
    }
    d = std::sqrt(d);
    dist_series.push_back(d);
    if (is_spike_season(days[i])) {
      spike_dist += d;
      ++spike_count;
    } else {
      normal_dist += d;
    }
  }
  normal_dist /= normal_count > 0 ? normal_count : 1;
  spike_dist /= spike_count > 0 ? spike_count : 1;

  std::printf("\ndistance from the normal-cloud centroid over two years\n"
              "(one sample every 2 days; spikes = deadline seasons):\n");
  PrintSparkline("PCA distance", dist_series);
  std::printf("\nmean distance: normal days %.2f, deadline-season days %.2f "
              "(%.1fx separation)\n",
              normal_dist, spike_dist,
              normal_dist > 0 ? spike_dist / normal_dist : 0.0);

  // Year-over-year locality: the same deadline dates should sit close in
  // the projected space (the paper's trajectory overlap).
  auto find_day = [&](int day) -> int {
    int best = -1, best_gap = 1 << 30;
    for (size_t i = 0; i < days.size(); ++i) {
      int gap = std::abs(days[i] - day);
      if (gap < best_gap) {
        best_gap = gap;
        best = static_cast<int>(i);
      }
    }
    return best_gap <= 1 ? best : -1;  // nearest sampled day
  };
  std::printf("\nselected 3-D coordinates (compare year 1 vs year 2):\n");
  for (int doy : {240, 334, 348, 358}) {
    for (int year = 0; year < 2; ++year) {
      int idx = find_day(365 * year + doy);
      if (idx < 0) continue;
      std::printf("  day %3d year %d: (%7.2f, %7.2f, %7.2f)\n", doy, year + 1,
                  (*projection)(idx, 0), (*projection)(idx, 1),
                  (*projection)(idx, 2));
    }
  }
  std::printf("\npaper shape: deadline-season trajectories travel far from\n"
              "the normal cloud, and the two years' spike paths overlap.\n");
  return 0;
}

// Figure 5: Cluster Coverage — the average fraction of daily workload
// volume covered by the top-1..5 clusters, with daily incremental
// clustering (the paper finds >= 95% at five clusters for all traces).
#include <cstdio>

#include "bench_util.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

std::vector<double> CoverageCurve(SyntheticWorkload workload, int days,
                                  int warmup_days) {
  OnlineClusterer::Options opts;
  opts.feature.num_samples = FastMode() ? 128 : 384;
  opts.feature.window_seconds = 7 * kSecondsPerDay;
  PreProcessor pre;
  OnlineClusterer clusterer(opts);
  std::vector<double> sums(5, 0.0);
  int counted = 0;
  for (int day = 0; day < days; ++day) {
    workload
        .FeedAggregated(pre, static_cast<Timestamp>(day) * kSecondsPerDay,
                        static_cast<Timestamp>(day + 1) * kSecondsPerDay,
                        10 * kSecondsPerMinute, 1)
        .ok();
    clusterer.Update(pre, static_cast<Timestamp>(day + 1) * kSecondsPerDay);
    if (day < warmup_days) continue;
    double total = clusterer.TotalVolume();
    if (total <= 0) continue;
    auto top = clusterer.TopClustersByVolume(5);
    double covered = 0;
    for (size_t k = 0; k < 5; ++k) {
      if (k < top.size()) covered += clusterer.clusters().at(top[k]).volume;
      sums[k] += covered / total;
    }
    ++counted;
  }
  for (double& s : sums) s /= counted > 0 ? counted : 1;
  return sums;
}

}  // namespace

int main() {
  PrintHeader("Figure 5: Cluster Coverage",
              "Figure 5 (top-k cluster volume ratio, rho=0.8)");
  int days = FastMode() ? 10 : 21;
  std::printf("%-11s | top-1  | top-2  | top-3  | top-4  | top-5\n", "workload");
  std::printf("--------------------------------------------------------\n");
  struct Job {
    const char* name;
    SyntheticWorkload workload;
  } jobs[] = {{"Admissions", MakeAdmissions()},
              {"BusTracker", MakeBusTracker()},
              {"MOOC", MakeMooc()}};
  for (auto& job : jobs) {
    auto curve = CoverageCurve(std::move(job.workload), days, 3);
    std::printf("%-11s |", job.name);
    for (double c : curve) std::printf(" %5.1f%% |", 100.0 * c);
    std::printf("\n");
  }
  std::printf("\npaper: five largest clusters cover >= 95%% of query volume\n"
              "for all three workloads.\n");
  return 0;
}

// Table 2: Workload Reduction — total queries -> templates -> clusters and
// the resulting reduction ratio, per workload (Pre-Processor + Clusterer,
// Sections 4-5). The paper's headline is a 10^5-10^7x reduction from raw
// queries to modeled clusters; our scaled traces reproduce the same
// orders-of-magnitude collapse.
#include <cstdio>

#include "bench_util.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

void Report(SyntheticWorkload workload, int days, const char* paper_row) {
  auto prepared = Prepare(std::move(workload), days, 10 * kSecondsPerMinute);
  double queries = prepared.pre.total_queries();
  size_t templates = prepared.pre.num_templates();
  size_t clusters = prepared.clusterer.clusters().size();
  std::printf("%-11s | %12.0f | %9zu | %8zu | %10.0fx\n",
              prepared.workload.label().c_str(), queries, templates, clusters,
              clusters > 0 ? queries / static_cast<double>(clusters) : 0.0);
  std::printf("  paper:    %s\n", paper_row);
}

}  // namespace

int main() {
  PrintHeader("Table 2: Workload Reduction",
              "Table 2 (queries -> templates -> clusters)");
  int scale = FastMode() ? 4 : 1;
  std::printf("%-11s | %12s | %9s | %8s | %10s\n", "workload", "queries",
              "templates", "clusters", "reduction");
  std::printf("----------------------------------------------------------------\n");
  Report(MakeAdmissions(), 60 / scale,
         "2546M queries, 4060 templates, 1950 clusters, 1.3M x");
  Report(MakeBusTracker(), 58 / scale,
         "1223M queries, 334 templates, 107 clusters, 10.5M x");
  Report(MakeMooc(), 60 / scale,
         "95M queries, 885 templates, 391 clusters, 0.24M x");
  return 0;
}

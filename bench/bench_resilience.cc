// Resilience-layer benchmarks (DESIGN.md §13): the cost of the bounded
// Forecast path and what a caller actually observes while maintenance is
// wedged mid-train. The headline numbers are the bounded-forecast latency
// percentiles against the 1ms budget, uncontended and with a stalled
// writer — the latter is the scenario the degradation ladder exists for:
// the caller pays at most half the budget waiting for the state lock and
// then serves the lock-free fallback snapshot.
//
// Caveat for committed results: on a single-core host the hammering thread
// is preempted at scheduler-tick granularity (milliseconds), so the stalled
// p99 measures host noise on top of the ladder; tests/chaos_test.cc scales
// its assertion budget accordingly and the #KV lines below record the host
// parallelism next to the percentiles.
//
// Lines prefixed "#KV key value" are machine-readable; tools/bench_to_json.py
// collects them (plus the google-benchmark JSON) into BENCH_resilience.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/chaos.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/qb5000.h"
#include "preprocessor/templatizer.h"

using namespace qb5000;

namespace {

constexpr Timestamp kTrainTime = 3 * kSecondsPerDay;
constexpr double kBudgetSeconds = 0.001;

/// A controller with three days of sinusoidal history on two templates,
/// trained once — the same shape the chaos sweep uses, so the bench and the
/// regression tests measure the identical serving path.
QueryBot5000 MakeTrainedBot() {
  QueryBot5000::Config config;
  config.forecaster.kind = ModelKind::kLr;
  config.forecaster.training_window_seconds = 2 * kSecondsPerDay;
  config.horizons = {kSecondsPerHour};
  QueryBot5000 bot(config);
  auto a = Templatize("SELECT a FROM t WHERE id = 1");
  auto b = Templatize("SELECT b FROM u WHERE id = 2");
  for (int h = 0; h < 3 * 24; ++h) {
    double t = static_cast<double>(h) / 24.0;
    double rate = 100 * (1.5 + std::sin(2 * M_PI * t));
    Timestamp ts = static_cast<Timestamp>(h) * kSecondsPerHour;
    bot.IngestTemplatized(*a, ts, rate);
    bot.IngestTemplatized(*b, ts, rate / 2);
  }
  Status st = bot.RunMaintenance(kTrainTime, /*force=*/true);
  if (!st.ok()) std::fprintf(stderr, "train: %s\n", st.ToString().c_str());
  return bot;
}

double Percentile(std::vector<double>& sorted_in_place, double p) {
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  size_t n = sorted_in_place.size();
  if (n == 0) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return sorted_in_place[std::min(rank, n) - 1];
}

/// Bounded forecasts against an idle controller: the TimedReaderLock
/// acquires on the fast path and the full rung serves.
std::vector<double> UncontendedLatencies(QueryBot5000& bot, int samples) {
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    ForecastRung rung = ForecastRung::kFull;
    Stopwatch call;
    auto f = bot.Forecast(kTrainTime, kSecondsPerHour, kBudgetSeconds, &rung);
    latencies.push_back(call.ElapsedSeconds());
    benchmark::DoNotOptimize(f);
  }
  return latencies;
}

/// Bounded forecasts while a maintenance pass is wedged mid-train holding
/// the state lock exclusively (a chaos stall): every call should give up
/// the lock wait at budget/2 and serve the fallback rung.
std::vector<double> StalledLatencies(QueryBot5000& bot, double stall_seconds) {
  ChaosHarness::Global().Arm(ChaosHarness::OpKind::kStall, "maintenance.train",
                             /*nth=*/0, stall_seconds);
  std::vector<double> latencies;
  ThreadPool pool(2);
  pool.Run(2, [&](size_t task) {
    if (task == 0) {
      Status st = bot.RunMaintenance(kTrainTime + kSecondsPerDay,
                                     /*force=*/true);
      if (!st.ok()) {
        std::fprintf(stderr, "retrain: %s\n", st.ToString().c_str());
      }
      return;
    }
    while (!ChaosHarness::Global().stall_active()) {
      std::this_thread::yield();
    }
    Stopwatch guard;
    while (guard.ElapsedSeconds() < stall_seconds * 0.8) {
      ForecastRung rung = ForecastRung::kFull;
      Stopwatch call;
      auto f = bot.Forecast(kTrainTime, kSecondsPerHour, kBudgetSeconds,
                            &rung);
      latencies.push_back(call.ElapsedSeconds());
      benchmark::DoNotOptimize(f);
    }
  });
  ChaosHarness::Global().Reset();
  return latencies;
}

void ReportSummary() {
  QueryBot5000 bot = MakeTrainedBot();
  int samples = bench::FastMode() ? 200 : 2000;
  double stall_seconds = bench::FastMode() ? 0.5 : 2.0;

  auto uncontended = UncontendedLatencies(bot, samples);
  double un_p50 = Percentile(uncontended, 50.0);
  double un_p99 = Percentile(uncontended, 99.0);

  auto stalled = StalledLatencies(bot, stall_seconds);
  double st_p50 = Percentile(stalled, 50.0);
  double st_p99 = Percentile(stalled, 99.0);

  uint64_t fallbacks =
      bot.Metrics().GetCounter("core.forecast_rung_fallback_total")->value();
  std::printf("#KV hardware_threads %zu\n", GetThreadCount());
  std::printf("#KV budget_seconds %g\n", kBudgetSeconds);
  std::printf("#KV uncontended_samples %zu\n", uncontended.size());
  std::printf("#KV uncontended_p50_seconds %.6f\n", un_p50);
  std::printf("#KV uncontended_p99_seconds %.6f\n", un_p99);
  std::printf("#KV stalled_samples %zu\n", stalled.size());
  std::printf("#KV stalled_p50_seconds %.6f\n", st_p50);
  std::printf("#KV stalled_p99_seconds %.6f\n", st_p99);
  std::printf("#KV fallback_forecasts_served %llu\n",
              static_cast<unsigned long long>(fallbacks));
  std::printf(
      "bounded forecast (budget %.0fus): uncontended p50 %.0fus p99 %.0fus; "
      "stalled-maintenance p50 %.0fus p99 %.0fus over %zu calls "
      "(%llu served from the fallback rung)\n",
      kBudgetSeconds * 1e6, un_p50 * 1e6, un_p99 * 1e6, st_p50 * 1e6,
      st_p99 * 1e6, stalled.size(),
      static_cast<unsigned long long>(fallbacks));
}

void BM_ForecastUnbounded(benchmark::State& state) {
  QueryBot5000 bot = MakeTrainedBot();
  for (auto _ : state) {
    auto f = bot.Forecast(kTrainTime, kSecondsPerHour);
    benchmark::DoNotOptimize(f);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForecastUnbounded);

void BM_ForecastBoundedUncontended(benchmark::State& state) {
  QueryBot5000 bot = MakeTrainedBot();
  for (auto _ : state) {
    ForecastRung rung = ForecastRung::kFull;
    auto f = bot.Forecast(kTrainTime, kSecondsPerHour, kBudgetSeconds, &rung);
    benchmark::DoNotOptimize(f);
    benchmark::DoNotOptimize(rung);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForecastBoundedUncontended);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ReportSummary();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

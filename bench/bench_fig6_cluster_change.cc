// Figure 6: Cluster Change — how many of the five highest-volume clusters
// change between consecutive days (stability of the online clustering).
// The paper sees <= 1 change on >90% of days for Admissions/BusTracker and
// more churn for MOOC (evolving workload).
#include <cstdio>
#include <set>

#include "bench_util.h"

using namespace qb5000;
using namespace qb5000::bench;

namespace {

std::vector<double> ChangeHistogram(SyntheticWorkload workload, int start_day,
                                    int days, int warmup_days) {
  OnlineClusterer::Options opts;
  opts.feature.num_samples = FastMode() ? 128 : 384;
  opts.feature.window_seconds = 7 * kSecondsPerDay;
  PreProcessor pre;
  OnlineClusterer clusterer(opts);
  std::vector<double> histogram(5, 0.0);
  std::set<ClusterId> previous;
  int counted = 0;
  for (int day = start_day; day < start_day + days; ++day) {
    workload
        .FeedAggregated(pre, static_cast<Timestamp>(day) * kSecondsPerDay,
                        static_cast<Timestamp>(day + 1) * kSecondsPerDay,
                        10 * kSecondsPerMinute, 1)
        .ok();
    clusterer.Update(pre, static_cast<Timestamp>(day + 1) * kSecondsPerDay);
    auto top = clusterer.TopClustersByVolume(5);
    std::set<ClusterId> current(top.begin(), top.end());
    if (day >= warmup_days && !previous.empty()) {
      size_t changed = 0;
      for (ClusterId id : current) {
        if (!previous.count(id)) ++changed;
      }
      histogram[std::min<size_t>(changed, 4)] += 1.0;
      ++counted;
    }
    previous = std::move(current);
  }
  for (double& h : histogram) h = counted > 0 ? 100.0 * h / counted : 0.0;
  return histogram;
}

}  // namespace

int main() {
  PrintHeader("Figure 6: Cluster Change",
              "Figure 6 (daily change count among the top-5 clusters)");
  int days = FastMode() ? 12 : 30;
  std::printf("%% of days with N cluster changes among the top five:\n");
  std::printf("%-11s |   0    |   1    |   2    |   3    |  >=4\n", "workload");
  std::printf("--------------------------------------------------------\n");
  struct Job {
    const char* name;
    SyntheticWorkload workload;
    int start_day;  // MOOC's window straddles its day-45 feature release
  } jobs[] = {{"Admissions", MakeAdmissions(), 0},
              {"BusTracker", MakeBusTracker(), 0},
              {"MOOC", MakeMooc(), 35}};
  for (auto& job : jobs) {
    auto histogram =
        ChangeHistogram(std::move(job.workload), job.start_day, days, 3);
    std::printf("%-11s |", job.name);
    for (double h : histogram) std::printf(" %5.1f%% |", h);
    std::printf("\n");
  }
  std::printf("\npaper: Admissions/BusTracker have <= 1 change on > 90%% of\n"
              "days; MOOC churns more as instructors launch new classes.\n");
  return 0;
}
